"""End-to-end geodetic tests: GPS in, zone-stamped storage, lat/lon out.

The acceptance surface of the GPS-native stack:

* :class:`GeoStreamEngine` determinism — identical key points to
  projecting each device's fixes oneself and running its compressor
  sequentially (the engine adds multiplexing, never behaviour).
* Zone stamping — every blob written by ``StoreSink`` carries the UTM
  zone/hemisphere selected from the device's first fix, readable from
  both the index envelope and the decoded header, surviving reopen and
  compaction.
* Geographic range queries — for a multi-zone noisy fleet and seeded
  random lat/lon rectangles, ``definite ⊆ truth ⊆ exact ⊆ approximate``
  against a brute-force scan of the raw GPS traces, where matches from
  different zones are each tested in their own frame.
* The conservative rectangle projection that guarantee rests on.
* The CLI surfaces (``repro.engine --geodetic``, ``repro.storage ingest
  --geodetic`` / ``query --geo-rect``).
"""

import functools
import random

import pytest

from repro.compression import BQSCompressor
from repro.engine import (
    GeoStreamEngine,
    ShardedStreamEngine,
    bqs_fleet_factory,
    gps_fleet_fixes,
    iter_geo_fix_batches,
)
from repro.model.projection import UTMProjection, utm_zone_for
from repro.storage import StoreSink, TrajectoryStore, geo_range_query, geo_rect_to_plane
from repro.storage import __main__ as storage_cli
from repro.engine import __main__ as engine_cli
from repro.storage.store import shard_store_sink

EPSILON = 10.0


def _factory(device_id):
    return BQSCompressor(EPSILON)


def _fleet(devices=10, fixes=80, seed=11, **kw):
    return gps_fleet_fixes(devices, fixes, seed=seed, **kw)


def _first_fix_projection(ids, lats, lons, device):
    for d, la, lo in zip(ids, lats, lons):
        if d == device:
            return UTMProjection.for_coordinate(la, lo)
    raise AssertionError(f"no fixes for {device}")


def _brute_devices(ids, lats, lons, rect, ts=None, t0=None, t1=None):
    lat0, lon0, lat1, lon1 = rect
    inside = set()
    for i, d in enumerate(ids):
        if t0 is not None and not (t0 <= ts[i] <= t1):
            continue
        if lat0 <= lats[i] <= lat1 and lon0 <= lons[i] <= lon1:
            inside.add(d)
    return inside


class TestGeoStreamEngine:
    def test_matches_sequential_per_device(self):
        """Engine output == project-it-yourself + sequential compression."""
        ids, ts, lats, lons = _fleet(multi_zone=True)
        engine = GeoStreamEngine(_factory)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 113):
            engine.push_columns(*batch)
        results = engine.finish_all()

        per_device = {}
        for d, t, la, lo in zip(ids, ts, lats, lons):
            per_device.setdefault(d, []).append((t, la, lo))
        for device, fixes in per_device.items():
            projection = UTMProjection.for_coordinate(fixes[0][1], fixes[0][2])
            reference = BQSCompressor(EPSILON)
            t_col = [f[0] for f in fixes]
            xs, ys = projection.forward_columns(
                [f[1] for f in fixes], [f[2] for f in fixes]
            )
            reference.push_xyt(t_col, xs, ys)
            expected = reference.finish()
            (got,) = results[device]
            assert got.key_points == expected.key_points
            assert got.frame == projection

    def test_zone_selected_from_first_fix(self):
        ids, ts, lats, lons = _fleet(multi_zone=True)
        engine = GeoStreamEngine(_factory)
        engine.push_columns(ids, ts, lats, lons)
        for device in set(ids):
            expected = _first_fix_projection(ids, lats, lons, device)
            assert engine.projection_for(device) == expected
        results = engine.finish_all()
        # Sealing forgets the projection and stamps the trajectory.
        for device, trajectories in results.items():
            assert engine.projection_for(device) is None
            assert trajectories[0].frame == _first_fix_projection(
                ids, lats, lons, device
            )

    def test_eviction_reselects_zone(self):
        """A device evicted in one zone and reappearing in another gets a
        fresh frame — the geodetic mirror of fresh-compressor semantics."""
        engine = GeoStreamEngine(_factory, max_devices=1)
        engine.push_fix("a", 0.0, 41.0, 9.1)  # zone 32
        engine.push_fix("a", 1.0, 41.0, 9.2)
        engine.push_fix("b", 2.0, 41.0, 9.0)  # evicts "a"
        engine.push_fix("a", 3.0, -23.0, -48.0)  # "a" reappears, zone 23 south
        results = engine.finish_all()
        first, second = results["a"]
        assert first.frame == UTMProjection(zone=32, south=False)
        assert second.frame == UTMProjection(zone=23, south=True)
        assert results["b"][0].frame == UTMProjection(zone=32, south=False)

    def test_mid_batch_eviction_keeps_frame_consistent(self):
        """Regression: a device LRU-evicted *inside* a batch that also
        carries later fixes for it reopens mid-dispatch; the reopened
        stream holds coordinates projected in the old frame, so the
        registry must keep that frame — not re-select a zone from the
        next batch's first fix and stamp mixed-frame output."""
        engine = GeoStreamEngine(_factory, max_devices=1)
        engine.push_fix("a", 0.0, 41.0, 9.1)  # "a" opens in zone 32
        # One batch: new device "b" first (its open evicts "a"), then
        # more fixes for "a" — which reopen it mid-dispatch.
        engine.push_columns(
            ("b", "a", "a"),
            (1.0, 2.0, 3.0),
            (41.0, 41.0, 41.0),
            (9.0, 9.1, 9.1),
        )
        # The reopened stream's coordinates were projected in zone 32;
        # the registry must still say zone 32.
        assert engine.projection_for("a") == UTMProjection(zone=32, south=False)
        # Later fixes that would select a different zone keep the frame.
        engine.push_fix("b", 4.0, 41.0, 9.0)  # evicts "a" again (sealed)
        results = engine.finish_all()
        first, second = results["a"]
        assert first.frame == UTMProjection(zone=32, south=False)
        assert second.frame == UTMProjection(zone=32, south=False)
        # And the reopened stream's key points really are zone-32 metres.
        proj = UTMProjection(zone=32, south=False)
        x, y = proj.forward(41.0, 9.1)
        assert second.key_points[0].x == pytest.approx(x, abs=1e-6)
        assert second.key_points[0].y == pytest.approx(y, abs=1e-6)

    def test_sharded_geodetic_identical(self):
        ids, ts, lats, lons = _fleet(multi_zone=True, noise_m=2.0)
        single = GeoStreamEngine(_factory)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 97):
            single.push_columns(*batch)
        expected = single.finish_all()
        with ShardedStreamEngine(_factory, workers=2, geodetic=True) as sharded:
            for batch in iter_geo_fix_batches(ids, ts, lats, lons, 97):
                sharded.push_columns(*batch)
            got = sharded.finish_all()
        assert set(got) == set(expected)
        for device in expected:
            assert [t.key_points for t in got[device]] == [
                t.key_points for t in expected[device]
            ]
            assert [t.frame for t in got[device]] == [
                t.frame for t in expected[device]
            ]

    def test_column_length_mismatch(self):
        engine = GeoStreamEngine(_factory)
        with pytest.raises(ValueError):
            engine.push_columns(("a",), (0.0,), (1.0,), (1.0, 2.0))

    def test_failed_dispatch_does_not_leak_projections(self):
        """Regression: a batch that errors before a new device's group is
        ingested must not leave that device's zone pinned in the registry
        (the entry would outlive any stream and shadow the zone of the
        first fix actually ingested later)."""
        engine = GeoStreamEngine(_factory)
        engine.push_fix("a", 10.0, 41.0, 9.1)
        # "a"'s group has a backwards timestamp -> dispatch raises; "b"
        # is new in the same batch and may never have been opened.
        with pytest.raises(ValueError):
            engine.push_columns(
                ("a", "b"), (5.0, 6.0), (41.0, -23.0), (9.1, -48.0)
            )
        # Registry entries correspond exactly to open inner streams.
        open_ids = set(engine.device_ids())
        assert set(
            d for d in ("a", "b") if engine.projection_for(d) is not None
        ) == {d for d in ("a", "b") if d in open_ids}
        # "b" arriving later from the southern cluster gets its real zone.
        engine.push_fix("b", 20.0, -23.0, -48.0)
        assert engine.projection_for("b") == UTMProjection(zone=23, south=True)


class TestGeoSanitized:
    """Boundary validation, policy filtering, and zone splitting."""

    def test_invalid_coordinate_named_without_policy(self):
        from repro.engine import BatchIngestError

        engine = GeoStreamEngine(_factory)
        engine.push_fix("a", 0.0, 41.0, 9.1)
        with pytest.raises(BatchIngestError) as info:
            engine.push_columns(
                ("a", "a", "b"),
                (1.0, 2.0, 0.0),
                (41.0, 95.0, 41.0),
                (9.1, 9.1, 9.0),
            )
        err = info.value
        assert err.device_id == "a"
        assert err.index == 1  # the offending fix within a's columns
        assert "out_of_range" in str(err)
        assert "95.0" in str(err)
        # Validation screens the whole batch before ANY dispatch: neither
        # a's valid prefix nor b was consumed, and b got no projection.
        assert engine.total_fixes == 1
        assert engine.projection_for("b") is None

    def test_non_finite_coordinate_named_without_policy(self):
        from repro.engine import BatchIngestError

        engine = GeoStreamEngine(_factory)
        with pytest.raises(BatchIngestError, match="non_finite"):
            engine.push_columns(
                ("a",), (0.0,), (41.0,), (float("nan"),)
            )
        assert engine.total_fixes == 0

    def test_policy_filters_invalid_coordinates(self):
        from repro.engine import SanitizePolicy

        engine = GeoStreamEngine(_factory, policy=SanitizePolicy())
        n = engine.push_columns(
            ("a", "a", "a", "a"),
            (0.0, 1.0, 2.0, 3.0),
            (41.0, 95.0, 41.001, 41.002),
            (9.1, 9.1, float("inf"), 9.103),
        )
        assert n == 2  # the two valid fixes
        results = engine.finish_all()
        assert len(results["a"]) == 1 and len(results["a"][0]) == 2
        report = engine.feed_report()
        assert report.reconciles
        assert report.dropped == {"non_finite": 1, "out_of_range": 1}

    def test_zone_split_seals_in_old_frame_and_reopens(self):
        """A device crossing a UTM boundary with split_zones gets one
        trajectory per zone, each stamped with the frame its coordinates
        were projected in."""
        from repro.engine import SanitizePolicy

        policy = SanitizePolicy(split_zones=True, zone_margin_deg=0.05)
        engine = GeoStreamEngine(_factory, policy=policy)
        # Zone 32 is lon [6, 12); walk across into zone 33.
        lons = [11.90, 11.95, 12.40, 12.45]
        engine.push_columns(
            ("a",) * 4,
            (0.0, 1.0, 2.0, 3.0),
            (41.0,) * 4,
            lons,
        )
        results = engine.finish_all()
        first, second = results["a"]
        assert first.frame == UTMProjection(zone=32, south=False)
        assert second.frame == UTMProjection(zone=33, south=False)
        assert len(first) == 2 and len(second) == 2
        report = engine.feed_report()
        assert report.splits == {"zone": 1}
        assert report.reconciles

    def test_zone_margin_hysteresis_prevents_shatter(self):
        """A track straddling the boundary within the margin must NOT
        split into per-fix trajectories."""
        from repro.engine import SanitizePolicy

        policy = SanitizePolicy(split_zones=True, zone_margin_deg=0.2)
        engine = GeoStreamEngine(_factory, policy=policy)
        lons = [11.95, 12.05, 11.98, 12.1, 11.9]  # jitter around 12.0
        engine.push_columns(
            ("a",) * 5,
            tuple(float(i) for i in range(5)),
            (41.0,) * 5,
            lons,
        )
        results = engine.finish_all()
        assert len(results["a"]) == 1
        assert engine.feed_report().splits == {}

    def test_two_zone_splits_in_one_batch_stamp_correct_frames(self):
        """Regression: a mid-batch split seals while the device is still
        open — the frame stamp must come from the registry's get path,
        not pop, or the SECOND split in the batch stamps frame=None."""
        from repro.engine import SanitizePolicy

        policy = SanitizePolicy(split_zones=True, zone_margin_deg=0.01)
        engine = GeoStreamEngine(_factory, policy=policy)
        # 32 -> 33 -> back to 32: two splits, three trajectories.
        lons = [11.90, 11.95, 12.50, 12.55, 11.40, 11.35]
        engine.push_columns(
            ("a",) * 6,
            tuple(float(i) for i in range(6)),
            (41.0,) * 6,
            lons,
        )
        results = engine.finish_all()
        frames = [t.frame for t in results["a"]]
        assert frames == [
            UTMProjection(zone=32, south=False),
            UTMProjection(zone=33, south=False),
            UTMProjection(zone=32, south=False),
        ]
        assert engine.feed_report().splits == {"zone": 2}
        # The registry is clean after finish_all.
        assert engine.projection_for("a") is None

    def test_zone_split_composes_with_gap_split(self):
        from repro.engine import SanitizePolicy

        policy = SanitizePolicy(
            split_zones=True, zone_margin_deg=0.01, gap_seconds=60.0
        )
        engine = GeoStreamEngine(_factory, policy=policy)
        engine.push_columns(
            ("a",) * 4,
            (0.0, 1.0, 5000.0, 5001.0),  # gap between 1.0 and 5000.0
            (41.0,) * 4,
            (11.90, 11.91, 12.50, 12.51),  # crossing happens at the gap
        )
        results = engine.finish_all()
        assert len(results["a"]) == 2
        report = engine.feed_report()
        # One seal suffices: the zone cut and the gap land between the
        # same two fixes, and both ledger entries record why.
        assert report.splits["zone"] == 1
        assert results["a"][0].frame == UTMProjection(zone=32, south=False)
        assert results["a"][1].frame == UTMProjection(zone=33, south=False)

    def test_sharded_geodetic_policy_matches_single(self):
        from repro.engine import SanitizePolicy

        ids, ts, lats, lons = _fleet(devices=6, fixes=50, multi_zone=True)
        policy = SanitizePolicy(max_speed_mps=500.0, gap_seconds=3600.0)
        single = GeoStreamEngine(_factory, policy=policy)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 97):
            single.push_columns(*batch)
        expected = single.finish_all()
        expected_report = single.feed_report()
        with ShardedStreamEngine(
            _factory, workers=2, geodetic=True, policy=policy
        ) as sharded:
            for batch in iter_geo_fix_batches(ids, ts, lats, lons, 97):
                sharded.push_columns(*batch)
            got = sharded.finish_all()
            report = sharded.feed_report()
        assert set(got) == set(expected)
        for device in expected:
            assert [t.key_points for t in got[device]] == [
                t.key_points for t in expected[device]
            ]
        assert report.to_json() == expected_report.to_json()


class TestZoneStampedStore:
    def _ingest(self, tmp_path, **fleet_kw):
        ids, ts, lats, lons = _fleet(**fleet_kw)
        sink = StoreSink(tmp_path / "geo")
        engine = GeoStreamEngine(_factory, collect=False, sink=sink)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 211):
            engine.push_columns(*batch)
        engine.finish_all()
        sink.close()
        return ids, ts, lats, lons

    def test_blobs_carry_correct_zone(self, tmp_path):
        ids, ts, lats, lons = self._ingest(tmp_path, multi_zone=True)
        with TrajectoryStore(tmp_path / "geo") as store:
            assert store.record_count == len(set(ids))
            zones = set()
            for ref in store.records():
                expected = _first_fix_projection(ids, lats, lons, ref.device_id)
                # Index envelope and decoded blob header agree with the
                # zone the device's first fix selects.
                assert ref.projection() == expected
                decoded = store.read(ref)
                assert decoded.utm_zone == expected.zone
                assert decoded.utm_south == expected.south
                assert decoded.projection() == expected
                zones.add((ref.utm_zone, ref.utm_south))
            assert len(zones) == 4  # two boundaries x two hemispheres

    def test_frame_survives_reopen_and_compaction(self, tmp_path):
        ids, _, lats, lons = self._ingest(tmp_path, multi_zone=True)
        with TrajectoryStore(tmp_path / "geo") as store:
            before = {
                r.device_id: (r.utm_zone, r.utm_south) for r in store.records()
            }
            store.compact()
            after = {
                r.device_id: (r.utm_zone, r.utm_south) for r in store.records()
            }
            assert after == before
        with TrajectoryStore(tmp_path / "geo") as store:
            assert {
                r.device_id: (r.utm_zone, r.utm_south) for r in store.records()
            } == before

    def test_unprojected_envelope_contains_track(self, tmp_path):
        ids, _, lats, lons = self._ingest(tmp_path)
        raw = {}
        for d, la, lo in zip(ids, lats, lons):
            raw.setdefault(d, []).append((la, lo))
        with TrajectoryStore(tmp_path / "geo") as store:
            rect = (min(lats), min(lons), max(lats), max(lons))
            for match in geo_range_query(store, rect, mode="approximate"):
                env = match.geo_envelope
                assert env is not None
                # Key points are a subset of the raw fixes, so the
                # record's envelope tracks the raw track's — the bbox
                # corners mix extremes of different points, so grid
                # curvature allows metre-scale (~1e-4 degree) slack, which
                # is the envelope's documented reporting precision.
                track = raw[match.device_id]
                slack = 1e-4
                assert env[0] >= min(t[0] for t in track) - slack
                assert env[2] <= max(t[0] for t in track) + slack
                assert env[1] >= min(t[1] for t in track) - slack
                assert env[3] <= max(t[1] for t in track) + slack
                # And it genuinely covers where the device was: the first
                # raw fix is always a key point.
                first = track[0]
                assert env[0] - slack <= first[0] <= env[2] + slack
                assert env[1] - slack <= first[1] <= env[3] + slack


class TestGeoRangeQuery:
    @pytest.fixture(scope="class")
    def fleet_store(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("geoq") / "store"
        ids, ts, lats, lons = _fleet(
            devices=16, fixes=120, seed=29, multi_zone=True, noise_m=2.0
        )
        sink = StoreSink(directory)
        engine = GeoStreamEngine(_factory, collect=False, sink=sink)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 509):
            engine.push_columns(*batch)
        engine.finish_all()
        sink.close()
        store = TrajectoryStore(directory)
        yield store, ids, ts, lats, lons
        store.close()

    def _bracket(self, store, ids, ts, lats, lons, rect, t0=None, t1=None):
        exact = geo_range_query(store, rect, mode="exact", t0=t0, t1=t1)
        approx = geo_range_query(store, rect, mode="approximate", t0=t0, t1=t1)
        definite = {m.device_id for m in exact if m.definite}
        exact_set = {m.device_id for m in exact}
        approx_set = {m.device_id for m in approx}
        truth = _brute_devices(ids, lats, lons, rect, ts=ts, t0=t0, t1=t1)
        assert definite <= truth, rect
        assert truth <= exact_set, rect
        assert exact_set <= approx_set, rect
        return truth, exact_set

    def test_bracket_on_random_rects(self, fleet_store):
        """The acceptance bracket, across both boundary clusters."""
        store, ids, ts, lats, lons = fleet_store
        rng = random.Random(404)
        nonempty = 0
        for _ in range(30):
            # Random sub-rectangles of one hemisphere's coverage —
            # including rects straddling the zone boundary.
            if rng.random() < 0.5:
                pool = [
                    (la, lo) for la, lo in zip(lats, lons) if la >= 0.0
                ]
            else:
                pool = [(la, lo) for la, lo in zip(lats, lons) if la < 0.0]
            la0, lo0 = pool[rng.randrange(len(pool))]
            dla = rng.uniform(0.0005, 0.05)
            dlo = rng.uniform(0.0005, 0.05)
            rect = (la0 - dla, lo0 - dlo, la0 + dla, lo0 + dlo)
            truth, _ = self._bracket(store, ids, ts, lats, lons, rect)
            if truth:
                nonempty += 1
        assert nonempty >= 10  # the fuzz actually exercised matches

    def test_boundary_straddling_rect_hits_both_zones(self, fleet_store):
        store, ids, ts, lats, lons = fleet_store
        north = [
            (la, lo) for la, lo in zip(lats, lons) if la >= 0.0
        ]
        rect = (
            min(p[0] for p in north),
            min(p[1] for p in north),
            max(p[0] for p in north),
            max(p[1] for p in north),
        )
        truth, exact_set = self._bracket(store, ids, ts, lats, lons, rect)
        zones = {
            m.ref.utm_zone
            for m in geo_range_query(store, rect, mode="exact")
        }
        assert zones == {32, 33}  # candidates tested in two frames
        assert truth == exact_set or truth < exact_set

    def test_windowed_bracket(self, fleet_store):
        store, ids, ts, lats, lons = fleet_store
        t0, t1 = 30.0, 80.0
        north = [(la, lo) for la, lo in zip(lats, lons) if la >= 0.0]
        rect = (
            min(p[0] for p in north),
            min(p[1] for p in north),
            max(p[0] for p in north),
            max(p[1] for p in north),
        )
        self._bracket(store, ids, ts, lats, lons, rect, t0=t0, t1=t1)

    def test_unstamped_records_are_skipped(self, tmp_path):
        """Planar-ingested records have no ellipsoid placement; the
        geographic query must not guess."""
        from repro.model import CompressedTrajectory, PlanePoint

        with TrajectoryStore(tmp_path / "mixed") as store:
            planar = CompressedTrajectory(
                key_points=(PlanePoint(500_000.0, 4_500_000.0, 0.0),),
                original_count=1,
                tolerance=EPSILON,
                algorithm="bqs",
            )
            store.append("planar-dev", planar)
            stamped = CompressedTrajectory(
                key_points=(PlanePoint(500_000.0, 4_500_000.0, 0.0),),
                original_count=1,
                tolerance=EPSILON,
                algorithm="bqs",
                frame=UTMProjection(zone=33, south=False),
            )
            store.append("gps-dev", stamped)
            matches = geo_range_query(
                store, (-90.0, -180.0, 90.0, 180.0), mode="approximate"
            )
            assert {m.device_id for m in matches} == {"gps-dev"}

    def test_input_validation(self, fleet_store):
        store = fleet_store[0]
        with pytest.raises(ValueError):
            geo_range_query(store, (1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            geo_range_query(store, (-91.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            geo_range_query(store, (0.0, 170.0, 1.0, 181.0))
        with pytest.raises(ValueError):
            geo_range_query(store, (0.0, 0.0, 1.0, 1.0), mode="fuzzy")
        with pytest.raises(ValueError):
            geo_range_query(store, (0.0, 0.0, 1.0, 1.0), t0=5.0)


class TestConservativeRectProjection:
    def _assert_contained(self, rng, rect, projection, samples=200):
        x_min, y_min, x_max, y_max = geo_rect_to_plane(rect, projection)
        for _ in range(samples):
            la = rng.uniform(rect[0], rect[2])
            lo = rng.uniform(rect[1], rect[3])
            x, y = projection.forward(la, lo)
            assert x_min <= x <= x_max and y_min <= y <= y_max, (rect, la, lo)

    @pytest.mark.parametrize("case", range(20))
    def test_true_image_contained(self, case):
        """Every geographic point inside the lat/lon rect must project
        inside the conservative planar rect — the property the
        no-false-negative guarantee stands on."""
        rng = random.Random(7100 + case)
        zone = rng.randrange(1, 61)
        south = rng.random() < 0.5
        projection = UTMProjection(zone=zone, south=south)
        cm = zone * 6.0 - 183.0
        lat0 = rng.uniform(2.0, 78.0) * (-1.0 if south else 1.0)
        lon0 = cm + rng.uniform(-3.2, 3.2)
        dla = rng.uniform(1e-4, 2.0)
        dlo = rng.uniform(1e-4, 2.0)
        rect = (lat0 - dla, lon0 - dlo, lat0 + dla, lon0 + dlo)
        self._assert_contained(rng, rect, projection)

    @pytest.mark.parametrize("case", range(12))
    def test_true_image_contained_near_poles(self, case):
        """Regression: the curvature margin must scale with latitude —
        a fixed mid-latitude bound let points of high-latitude rects
        escape the 'containing' rect by ~100 m (projected parallels near
        the pole curve like tan(φ)/R, 10–1000× the 84° value)."""
        rng = random.Random(7900 + case)
        zone = rng.randrange(1, 61)
        south = rng.random() < 0.5
        sign = -1.0 if south else 1.0
        projection = UTMProjection(zone=zone, south=south)
        lat_lo = rng.uniform(80.0, 89.0)
        lat_hi = min(lat_lo + rng.uniform(0.1, 2.0), 89.9)
        lon0 = rng.uniform(-180.0, 120.0)
        rect = (
            min(sign * lat_lo, sign * lat_hi),
            lon0,
            max(sign * lat_lo, sign * lat_hi),
            lon0 + rng.uniform(0.5, 60.0),
        )
        self._assert_contained(rng, rect, projection)

    def test_reviewers_polar_counterexample(self):
        """The concrete escape case: (88..89.5)° × (±60)° in zone 31."""
        rng = random.Random(1)
        self._assert_contained(
            rng, (88.0, -60.0, 89.5, 60.0), UTMProjection(zone=31), samples=500
        )

    def test_degenerate_rect(self):
        projection = UTMProjection(zone=32)
        rect = geo_rect_to_plane((47.0, 9.0, 47.0, 9.0), projection)
        x, y = projection.forward(47.0, 9.0)
        assert rect[0] <= x <= rect[2] and rect[1] <= y <= rect[3]


class TestShardedGeodeticToDisk:
    def test_multi_zone_fleet_through_sharded_engine(self, tmp_path):
        """The ISSUE acceptance path: GPS fixes for a multi-zone fleet flow
        through the *sharded* engine into per-shard stores whose blobs
        carry the correct zone, and the lat/lon bracket holds against the
        raw traces."""
        ids, ts, lats, lons = _fleet(
            devices=12, fixes=90, seed=41, multi_zone=True, noise_m=1.5
        )
        base = tmp_path / "shards"
        sink_factory = functools.partial(shard_store_sink, str(base))
        with ShardedStreamEngine(
            functools.partial(bqs_fleet_factory, EPSILON),
            workers=2,
            collect=False,
            sink_factory=sink_factory,
            geodetic=True,
        ) as engine:
            for batch in iter_geo_fix_batches(ids, ts, lats, lons, 301):
                engine.push_columns(*batch)
            engine.finish_all()

        shard_dirs = sorted(base.glob("shard-*"))
        assert len(shard_dirs) == 2
        seen_devices = set()
        definite = set()
        exact_set = set()
        approx_set = set()
        north = [(la, lo) for la, lo in zip(lats, lons) if la >= 0.0]
        rect = (
            min(p[0] for p in north),
            min(p[1] for p in north),
            max(p[0] for p in north),
            max(p[1] for p in north),
        )
        for directory in shard_dirs:
            with TrajectoryStore(directory) as store:
                for ref in store.records():
                    seen_devices.add(ref.device_id)
                    assert ref.projection() == _first_fix_projection(
                        ids, lats, lons, ref.device_id
                    )
                    assert store.read(ref).utm_zone == ref.utm_zone
                exact = geo_range_query(store, rect, mode="exact")
                definite |= {m.device_id for m in exact if m.definite}
                exact_set |= {m.device_id for m in exact}
                approx_set |= {
                    m.device_id
                    for m in geo_range_query(store, rect, mode="approximate")
                }
        assert seen_devices == set(ids)
        truth = _brute_devices(ids, lats, lons, rect)
        assert definite <= truth <= exact_set <= approx_set
        assert truth  # the rect actually contains devices


class TestCLI:
    def test_engine_cli_geodetic(self, capsys):
        assert (
            engine_cli.main(
                [
                    "--devices", "6", "--fixes", "40",
                    "--geodetic", "--multi-zone", "--batch", "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zones stamped:" in out
        assert "32N" in out and "23S" in out

    def test_storage_cli_geodetic_roundtrip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "clistore")
        assert (
            storage_cli.main(
                [
                    "ingest", store_dir,
                    "--devices", "6", "--fixes", "40",
                    "--geodetic", "--multi-zone", "--noise-m", "1.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zones stamped:" in out
        assert (
            storage_cli.main(
                ["query", store_dir, "--geo-rect=41.2,11.9,41.4,12.1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zone=3" in out  # zone 32 or 33 reported per match
        assert "lat=[" in out
        # --rect and --geo-rect are mutually exclusive.
        with pytest.raises(SystemExit):
            storage_cli.main(
                [
                    "query", store_dir,
                    "--rect=0,0,1,1", "--geo-rect=0,0,1,1",
                ]
            )
        # GPS-only simulator flags without --geodetic are a user error,
        # not a silent no-op (matches the engine CLI).
        with pytest.raises(SystemExit):
            storage_cli.main(
                [
                    "ingest", str(tmp_path / "oops"),
                    "--devices", "2", "--fixes", "5", "--multi-zone",
                ]
            )
