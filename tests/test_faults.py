"""Fault-injection and kill-9 crash tests for the durable write paths.

Covers the :mod:`repro.fsio` shims (ENOSPC budgets, torn writes, failing
renames, lying fsync), the store's atomic-commit hygiene under those
faults, the forked kill-9 ingest/compact harnesses, and the sharded
engine's typed crash surface + supervised restart.
"""

import functools
import os
import signal
import time

import pytest

from repro import fsio
from repro.engine import (
    ShardCrashError,
    ShardedStreamEngine,
    StreamEngine,
    fleet_fixes,
    iter_fix_batches,
    shard_of,
)
from repro.storage.store import StoreSink, TrajectoryStore
from repro.testing import FaultyFS, KillFS, run_compact_kill, run_crash_ingest


def _factory(device_id):
    from repro.compression import BQSCompressor

    return BQSCompressor(5.0)


class TestFaultyFS:
    def test_enospc_budget_tears_the_write(self, tmp_path):
        shim = FaultyFS(enospc_after=10)
        path = tmp_path / "f"
        with fsio.injected(shim):
            handle = fsio.open_file(path, "wb")
            with pytest.raises(OSError) as info:
                handle.write(b"0123456789ABCDEF")
            handle.close()
        assert info.value.errno == __import__("errno").ENOSPC
        assert path.read_bytes() == b"0123456789"  # the bytes that fit
        assert shim.bytes_written == 10

    def test_torn_write_persists_half(self, tmp_path):
        shim = FaultyFS(torn_write_at=2)
        path = tmp_path / "f"
        with fsio.injected(shim):
            handle = fsio.open_file(path, "wb")
            handle.write(b"intact")
            with pytest.raises(OSError):
                handle.write(b"12345678")
            handle.close()
        assert path.read_bytes() == b"intact" + b"1234"

    def test_replace_failure_and_fsync_drop(self, tmp_path):
        shim = FaultyFS(fail_replace_at=1, drop_fsync=True)
        src = tmp_path / "src"
        src.write_bytes(b"x")
        with fsio.injected(shim):
            with pytest.raises(OSError):
                fsio.replace(src, tmp_path / "dst")
            handle = fsio.open_file(tmp_path / "g", "wb")
            handle.write(b"y")
            fsio.fsync(handle.fileno())  # swallowed, not forwarded
            handle.close()
        assert src.exists() and not (tmp_path / "dst").exists()
        assert shim.replaces == 1 and shim.fsyncs == 1

    def test_reads_stay_native(self, tmp_path):
        (tmp_path / "r").write_bytes(b"data")
        with fsio.injected(FaultyFS(enospc_after=0)):
            with fsio.open_file(tmp_path / "r", "rb") as handle:
                assert handle.read() == b"data"


class TestManifestCommitHygiene:
    """Satellite regression: a failed manifest write must not leave a
    stale ``manifest.json.tmp`` shadowing the next commit."""

    def _store_with_data(self, tmp_path):
        store = TrajectoryStore(tmp_path / "store")
        engine = StreamEngine(_factory, collect=False, sink=StoreSink(store))
        ids, cols = fleet_fixes(4, 30, seed=1)
        for batch in iter_fix_batches(ids, cols, 32):
            engine.push_columns(*batch)
        engine.finish_all()
        return store

    def test_enospc_mid_manifest_leaves_no_tmp(self, tmp_path):
        store = self._store_with_data(tmp_path)
        shim = FaultyFS(enospc_after=0)
        with fsio.injected(shim):
            with pytest.raises(OSError):
                store._write_manifest()
        assert not (tmp_path / "store" / "manifest.json.tmp").exists()
        # The store is still live and the next commit succeeds.
        store._write_manifest()
        store.close()
        with TrajectoryStore(tmp_path / "store") as reopened:
            assert reopened.record_count > 0

    def test_failed_replace_leaves_no_tmp(self, tmp_path):
        store = self._store_with_data(tmp_path)
        with fsio.injected(FaultyFS(fail_replace_at=1)):
            with pytest.raises(OSError):
                store._write_manifest()
        assert not (tmp_path / "store" / "manifest.json.tmp").exists()
        store.close()


class TestKillHarnesses:
    def test_kill_at_batch_boundary(self, tmp_path):
        report = run_crash_ingest(tmp_path, seed=0, kill_batch=3)
        assert report["killed"]
        assert report["acked_batches"] >= 3
        assert report["recovery"]["last_seq"] >= report["acked_batches"]

    def test_kill_mid_write(self, tmp_path):
        report = run_crash_ingest(tmp_path, seed=1, kill_bytes=6000)
        assert report["killed"]
        # The journal scan either found a clean tail or dropped a torn one;
        # both end in the digest assertion inside the harness passing.
        assert report["recovery"]["last_seq"] >= report["acked_batches"]

    def test_no_kill_recovery_is_noop(self, tmp_path):
        report = run_crash_ingest(tmp_path, seed=0)
        assert not report["killed"]
        assert report["acked_batches"] == report["total_batches"]
        # finish_all rotated the journal, so there is nothing to replay.
        assert report["recovery"]["batches_replayed"] == 0

    def test_mutually_exclusive_kill_args(self, tmp_path):
        with pytest.raises(ValueError):
            run_crash_ingest(tmp_path, kill_batch=1, kill_bytes=100)

    def test_compact_kill_keeps_one_full_generation(self, tmp_path):
        report = run_compact_kill(tmp_path, seed=0, kill_bytes=512)
        assert report["child_exitcode"] == -signal.SIGKILL
        assert report["generation_after"] in (
            report["generation_before"],
            report["generation_before"] + 1,
        )

    def test_killfs_tears_exactly_at_budget(self, tmp_path):
        # KillFS in-process semantics (without the kill): the budget math
        # mirrors FaultyFS, so exercise only the bookkeeping here.
        shim = KillFS(kill_after_bytes=1 << 30)
        with fsio.injected(shim):
            handle = fsio.open_file(tmp_path / "f", "wb")
            handle.write(b"abc")
            handle.close()
        assert shim.bytes_written == 3


class TestShardCrash:
    @pytest.fixture()
    def stream(self):
        ids, cols = fleet_fixes(8, 80, seed=9)
        return ids, cols

    def _reference(self, ids, cols):
        engine = StreamEngine(_factory)
        for batch in iter_fix_batches(ids, cols, 64):
            engine.push_columns(*batch)
        return {
            device_id: [t.key_points for t in trajectories]
            for device_id, trajectories in engine.finish_all().items()
        }

    def test_unsupervised_crash_is_typed(self, stream):
        ids, cols = stream
        engine = ShardedStreamEngine(_factory, workers=2)
        try:
            batches = list(iter_fix_batches(ids, cols, 64))
            engine.push_columns(*batches[0])
            os.kill(engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises(ShardCrashError) as info:
                for batch in batches[1:]:
                    engine.push_columns(*batch)
                engine.finish_all()
        finally:
            engine.close()
        error = info.value
        assert isinstance(error, RuntimeError)  # legacy handlers keep working
        assert str(error).startswith("sharded ingestion failed: ")
        assert error.shard == 0
        assert error.exitcode == -signal.SIGKILL
        assert error.device_ids  # the blast radius is named
        assert all(shard_of(d, 2) == 0 for d in error.device_ids)

    def test_supervised_restart_reproduces_results(self, tmp_path, stream):
        ids, cols = stream
        reference = self._reference(ids, cols)
        batches = list(iter_fix_batches(ids, cols, 64))
        engine = ShardedStreamEngine(
            _factory,
            workers=2,
            journal_dir=tmp_path / "wal",
            restart_workers=2,
        )
        try:
            half = len(batches) // 2
            for batch in batches[:half]:
                engine.push_columns(*batch)
            os.kill(engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            for batch in batches[half:]:
                engine.push_columns(*batch)
            results = engine.finish_all()
        finally:
            engine.close()
        assert engine._restarts[0] >= 1
        assert {
            device_id: [t.key_points for t in trajectories]
            for device_id, trajectories in results.items()
        } == reference

    def test_restart_requires_journal(self):
        with pytest.raises(ValueError, match="journal_dir"):
            ShardedStreamEngine(_factory, workers=2, restart_workers=1)
