"""Codec tests: lossless-at-quantum round trips, fuzz, geodetic closure.

The codec's contract has three layers, each pinned here:

* **Exactness at the quantum** — every decoded coordinate equals
  ``round(v / quantum) * quantum`` of the encoded one, bit for bit, and
  re-encoding a decoded trajectory reproduces the identical byte string
  (idempotence).  The fuzz test hammers this across random magnitudes,
  quanta, metrics and algorithm names (``CODEC_FUZZ_CASES`` scales it
  up in CI).
* **Self-description** — the header round-trips algorithm, ε, metric,
  original count and the optional UTM zone, so a blob needs no
  out-of-band context.
* **Geodetic closure** — GPS fixes projected through a random UTM zone,
  compressed by BQS, encoded and decoded come back within the quantum
  tolerance of the original key-point positions, on both hemispheres
  (the satellite property test: raw GPS in, bounded positions out).
"""

import math
import os
import random

import pytest

from repro.compression import BQSCompressor
from repro.compression.evaluate import synthetic_track
from repro.geometry import DistanceMetric
from repro.model import CompressedTrajectory, LocationPoint, PlanePoint
from repro.model.projection import UTMProjection, project_track
from repro.storage import (
    DEFAULT_T_QUANTUM,
    DEFAULT_XY_QUANTUM,
    CodecError,
    decode_trajectory,
    encode_trajectory,
)

FUZZ_CASES = int(os.environ.get("CODEC_FUZZ_CASES", "30"))
CORRUPT_CASES = int(os.environ.get("CODEC_CORRUPT_CASES", "60"))


def _compressed(n=2000, seed=7, epsilon=10.0):
    return BQSCompressor(epsilon).compress(synthetic_track(n, seed=seed))


class TestRoundTrip:
    def test_header_fields(self):
        ct = _compressed()
        dec = decode_trajectory(encode_trajectory(ct))
        assert dec.algorithm == "bqs"
        assert dec.epsilon == 10.0
        assert dec.metric is DistanceMetric.POINT_TO_LINE
        assert dec.original_count == 2000
        assert len(dec.columns) == len(ct.key_points)
        assert dec.xy_quantum == DEFAULT_XY_QUANTUM
        assert dec.t_quantum == DEFAULT_T_QUANTUM
        assert dec.utm_zone is None and dec.projection() is None

    def test_positions_exact_at_quantum(self):
        ct = _compressed()
        dec = decode_trajectory(encode_trajectory(ct))
        for p, (t, x, y) in zip(ct.key_points, dec.columns):
            assert x == round(p.x / DEFAULT_XY_QUANTUM) * DEFAULT_XY_QUANTUM
            assert y == round(p.y / DEFAULT_XY_QUANTUM) * DEFAULT_XY_QUANTUM
            assert t == round(p.t / DEFAULT_T_QUANTUM) * DEFAULT_T_QUANTUM
            assert abs(x - p.x) <= DEFAULT_XY_QUANTUM / 2
            assert abs(y - p.y) <= DEFAULT_XY_QUANTUM / 2
            assert abs(t - p.t) <= DEFAULT_T_QUANTUM / 2

    def test_reencode_byte_identical(self):
        ct = _compressed()
        blob = encode_trajectory(ct)
        assert encode_trajectory(decode_trajectory(blob).to_trajectory()) == blob

    def test_utm_zone_round_trip(self):
        ct = _compressed(200)
        proj = UTMProjection(zone=33, south=True)
        dec = decode_trajectory(encode_trajectory(ct, projection=proj))
        assert dec.utm_zone == 33 and dec.utm_south is True
        assert dec.projection() == proj

    def test_compact_on_disk(self):
        """The point of the codec: far below 24 raw double bytes/point."""
        ct = _compressed(10_000)
        blob = encode_trajectory(ct)
        assert len(blob) < len(ct.key_points) * 12  # beats even raw GPS size

    def test_empty_and_single_point(self):
        empty = CompressedTrajectory(key_points=(), original_count=0)
        dec = decode_trajectory(encode_trajectory(empty))
        assert len(dec.columns) == 0 and dec.key_points() == []
        one = CompressedTrajectory(
            key_points=(PlanePoint(1.25, -3.5, 17.0),), original_count=5
        )
        dec = decode_trajectory(encode_trajectory(one))
        assert dec.key_points() == [PlanePoint(1.25, -3.5, 17.0)]

    def test_key_point_timestamps_stay_monotone(self):
        """Quantization must never reorder key points in time."""
        ct = _compressed(5000, seed=11)
        dec = decode_trajectory(encode_trajectory(ct))
        ts = dec.columns.ts
        assert all(b >= a for a, b in zip(ts, ts[1:]))
        dec.to_trajectory()  # CompressedTrajectory re-validates this


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_trajectory(b"NOPE" + bytes(32))

    def test_bad_version(self):
        blob = bytearray(encode_trajectory(_compressed(50)))
        blob[4] = 99
        with pytest.raises(CodecError):
            decode_trajectory(bytes(blob))

    def test_truncation_always_raises(self):
        blob = encode_trajectory(_compressed(200, seed=3))
        for cut in (0, 3, 7, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodecError):
                decode_trajectory(blob[:cut])

    def test_trailing_garbage(self):
        blob = encode_trajectory(_compressed(50))
        with pytest.raises(CodecError):
            decode_trajectory(blob + b"\x00")

    def test_bad_quanta_rejected(self):
        ct = _compressed(50)
        with pytest.raises(ValueError):
            encode_trajectory(ct, xy_quantum=0.0)
        with pytest.raises(ValueError):
            encode_trajectory(ct, t_quantum=-1.0)

    def test_encoder_rejects_out_of_wire_range_values(self):
        """Regression: the encoder must refuse what the capped decoder
        cannot read — an extreme coordinate/quantum combination used to
        encode fine and then fail its own round trip."""
        huge = CompressedTrajectory(
            key_points=(PlanePoint(9e18, 0.0, 0.0),), original_count=1
        )
        with pytest.raises(ValueError, match="70-bit wire range"):
            encode_trajectory(huge, xy_quantum=0.001)
        # A large-but-legal value still round-trips.
        big = CompressedTrajectory(
            key_points=(PlanePoint(2.0**59, 0.0, 0.0),), original_count=1
        )
        blob = encode_trajectory(big, xy_quantum=1.0)
        dec = decode_trajectory(blob)
        assert dec.columns.xs[0] == 2.0**59


class TestFuzz:
    @pytest.mark.parametrize("case", range(FUZZ_CASES))
    def test_random_round_trips(self, case):
        rng = random.Random(9000 + case)
        n = rng.choice((0, 1, 2, rng.randrange(3, 300)))
        scale = 10.0 ** rng.randrange(-2, 7)
        xy_quantum = rng.choice((0.001, 0.01, 0.1, 1.0))
        t_quantum = rng.choice((0.001, 0.01, 1.0))
        t = rng.uniform(0.0, 1e9)
        points = []
        for _ in range(n):
            points.append(
                PlanePoint(
                    rng.uniform(-scale, scale), rng.uniform(-scale, scale), t
                )
            )
            t += rng.choice((0.0, rng.uniform(0.0, 3600.0)))
        metric = rng.choice(list(DistanceMetric))
        ct = CompressedTrajectory(
            key_points=tuple(points),
            original_count=n + rng.randrange(0, 10_000) if n else 0,
            metric=metric,
            tolerance=rng.choice((5.0, 10.0, math.inf)),
            algorithm=rng.choice(("bqs", "fast-bqs", "td-tr", "αλγο")),
        )
        blob = encode_trajectory(
            ct, xy_quantum=xy_quantum, t_quantum=t_quantum
        )
        dec = decode_trajectory(blob)
        assert dec.algorithm == ct.algorithm
        assert dec.metric is metric
        assert dec.epsilon == ct.tolerance
        assert dec.original_count == ct.original_count
        assert len(dec.columns) == n
        for p, (dt, dx, dy) in zip(points, dec.columns):
            assert dx == round(p.x / xy_quantum) * xy_quantum
            assert dy == round(p.y / xy_quantum) * xy_quantum
            assert dt == round(p.t / t_quantum) * t_quantum
        assert (
            encode_trajectory(
                dec.to_trajectory(),
                xy_quantum=xy_quantum,
                t_quantum=t_quantum,
            )
            == blob
        )


class TestCorruptFuzz:
    """Only :class:`CodecError` may escape ``decode_trajectory`` — ever.

    The documented contract ("raises CodecError on bad input") used to be
    violated by varint abuse: a long continuation-byte run manufactured a
    huge bigint and the ``q * quantum`` float product escaped as
    ``OverflowError``.  These tests hammer truncations, bit flips and
    continuation runs over valid encodings and accept exactly two
    outcomes: a successful decode (damage can land in benign places or
    cancel out) or ``CodecError``.
    """

    def _try_decode(self, blob):
        """Decode, asserting nothing but CodecError can escape."""
        try:
            decode_trajectory(blob)
        except CodecError:
            pass

    def _valid_blobs(self, rng):
        n = rng.choice((1, 2, 5, rng.randrange(3, 60)))
        t = rng.uniform(0.0, 1e6)
        points = []
        for _ in range(n):
            points.append(
                PlanePoint(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4), t)
            )
            t += rng.uniform(0.0, 120.0)
        ct = CompressedTrajectory(
            key_points=tuple(points),
            original_count=n * 10,
            tolerance=10.0,
            algorithm="bqs",
        )
        projection = (
            UTMProjection(zone=rng.randrange(1, 61), south=rng.random() < 0.5)
            if rng.random() < 0.5
            else None
        )
        return encode_trajectory(ct, projection=projection)

    def test_overflow_regression(self):
        """The confirmed bug, verbatim: a continuation-byte run in a column
        escaped as ``OverflowError`` ("int too large to convert to
        float"); now it is a capped-varint CodecError."""
        blob = encode_trajectory(_compressed(200, seed=5))
        hostile = blob[:60] + b"\x80" * 200 + b"\x01"
        with pytest.raises(CodecError):
            decode_trajectory(hostile)

    def test_huge_varint_in_every_position(self):
        """Splice the hostile run at every byte offset of a valid blob;
        whatever field it lands in, only CodecError escapes."""
        blob = encode_trajectory(_compressed(100, seed=6))
        run = b"\x80" * 200 + b"\x01"
        for offset in range(0, len(blob), 7):
            self._try_decode(blob[:offset] + run + blob[offset:])
            self._try_decode(blob[:offset] + run)

    def test_fabricated_key_point_count(self):
        """A header claiming more key points than the blob could possibly
        hold (≥3 bytes each) must fail fast, not loop gigabytes."""
        from repro.storage.codec import _F64, _append_uvarint

        blob = bytearray(b"BQTC")
        blob.append(1)  # version
        blob.append(0)  # flags
        blob.append(0)  # metric id
        blob.append(0)  # empty algorithm name
        blob += _F64.pack(10.0)
        _append_uvarint(blob, 1000)  # original_count
        _append_uvarint(blob, 1 << 40)  # n: absurd
        blob += _F64.pack(0.01)
        blob += _F64.pack(0.001)
        blob += b"\x00" * 64  # nowhere near 3 * 2^40 column bytes
        with pytest.raises(CodecError):
            decode_trajectory(bytes(blob))

    @pytest.mark.parametrize("case", range(CORRUPT_CASES))
    def test_random_corruptions(self, case):
        rng = random.Random(31_000 + case)
        blob = self._valid_blobs(rng)
        kind = rng.randrange(4)
        if kind == 0:  # truncation: always an error
            cut = rng.randrange(len(blob))
            with pytest.raises(CodecError):
                decode_trajectory(blob[:cut])
        elif kind == 1:  # bit flips
            corrupt = bytearray(blob)
            for _ in range(rng.choice((1, 1, 2, 8))):
                corrupt[rng.randrange(len(corrupt))] ^= 1 << rng.randrange(8)
            self._try_decode(bytes(corrupt))
        elif kind == 2:  # continuation-byte run spliced at a random offset
            offset = rng.randrange(len(blob) + 1)
            run = b"\x80" * rng.choice((3, 11, 40, 200))
            terminated = rng.random() < 0.5
            self._try_decode(
                blob[:offset]
                + run
                + (b"\x01" if terminated else b"")
                + blob[offset:]
            )
        else:  # random garbage tail / swapped halves
            if rng.random() < 0.5:
                self._try_decode(
                    blob + bytes(rng.randrange(256) for _ in range(9))
                )
            else:
                mid = len(blob) // 2
                self._try_decode(blob[mid:] + blob[:mid])


class TestGeodetic:
    """GPS -> UTM -> BQS -> codec -> GPS stays within quantum tolerance."""

    @pytest.mark.parametrize("case", range(12))
    def test_random_zone_round_trip(self, case):
        rng = random.Random(4100 + case)
        zone = rng.randrange(1, 61)
        south = rng.random() < 0.5
        lat0 = rng.uniform(-70.0, -2.0) if south else rng.uniform(2.0, 70.0)
        lon0 = (zone * 6.0 - 183.0) + rng.uniform(-2.5, 2.5)

        lat, lon = lat0, lon0
        fixes = []
        for k in range(300):
            fixes.append(
                LocationPoint(latitude=lat, longitude=lon, timestamp=float(k))
            )
            lat += rng.uniform(-4e-5, 4e-5)
            lon += rng.uniform(-4e-5, 4e-5)

        projection = UTMProjection(zone=zone, south=south)
        plane = project_track(fixes, projection)
        compressed = BQSCompressor(10.0).compress(plane)
        assert compressed.max_deviation_from(plane) <= 10.0 * (1 + 1e-9)

        dec = decode_trajectory(
            encode_trajectory(compressed, projection=projection)
        )
        assert dec.utm_zone == zone and dec.utm_south == south

        # Plane positions: exact at the quantum.
        for p, (t, x, y) in zip(compressed.key_points, dec.columns):
            assert abs(x - p.x) <= DEFAULT_XY_QUANTUM / 2 + 1e-9
            assert abs(y - p.y) <= DEFAULT_XY_QUANTUM / 2 + 1e-9
            assert abs(t - p.t) <= DEFAULT_T_QUANTUM / 2 + 1e-12

        # Geographic positions: unprojecting through the stamped zone
        # lands within a whisker of the quantum (the projection's own
        # round-trip error is sub-millimetre).
        decoded_projection = dec.projection()
        original_fix = {f.timestamp: f for f in fixes}
        for t, x, y in dec.columns:
            lat_d, lon_d = decoded_projection.inverse(x, y)
            src = original_fix[round(t)]
            x_src, y_src = projection.forward(src.latitude, src.longitude)
            x_back, y_back = projection.forward(lat_d, lon_d)
            err = math.hypot(x_back - x_src, y_back - y_src)
            assert err <= DEFAULT_XY_QUANTUM * 0.75, (zone, south, err)
