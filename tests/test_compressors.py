"""Compressor tests: protocol conformance, the error-bound invariant, and
the paper's buffer-behaviour claims for BQS and Fast-BQS."""

import math

import pytest

from repro.compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    Decision,
    DouglasPeucker,
    FastBQSCompressor,
    PushResult,
    StreamingCompressor,
    TDTRCompressor,
    UniformSampler,
    synthetic_track,
)
from repro.model import PlanePoint

EPSILON = 10.0
N = 10_000


@pytest.fixture(scope="module")
def track():
    return synthetic_track(N, seed=7)


def streaming_suite():
    """The four online compressors named by the acceptance criteria."""
    return [
        BQSCompressor(EPSILON),
        FastBQSCompressor(EPSILON),
        DeadReckoningCompressor(EPSILON),
        UniformSampler(3, epsilon=EPSILON),
    ]


def full_suite():
    return streaming_suite() + [DouglasPeucker(EPSILON), TDTRCompressor(EPSILON)]


class TestProtocolConformance:
    def test_all_compressors_satisfy_streaming_protocol(self):
        for compressor in full_suite():
            assert isinstance(compressor, StreamingCompressor)

    def test_push_returns_push_result(self, track):
        for compressor in streaming_suite():
            result = compressor.push(track[0])
            assert isinstance(result, PushResult)
            assert result.index == 0
            assert result.committed  # the first point is always a key point
        for compressor in (DouglasPeucker(EPSILON), TDTRCompressor(EPSILON)):
            result = compressor.push(track[0])
            assert result.decided_by == Decision.BATCH
            assert not result.committed  # batch algorithms decide in finish()

    def test_push_after_finish_rejected(self, track):
        c = BQSCompressor(EPSILON)
        c.push(track[0])
        c.finish()
        with pytest.raises(RuntimeError):
            c.push(track[1])
        c.reset()
        c.push(track[1])  # reset makes the instance reusable

    def test_time_monotonicity_enforced(self):
        c = FastBQSCompressor(EPSILON)
        c.push(PlanePoint(0.0, 0.0, 10.0))
        with pytest.raises(ValueError):
            c.push(PlanePoint(1.0, 0.0, 5.0))

    def test_single_point_stream(self):
        for compressor in full_suite():
            ct = compressor.compress([PlanePoint(1.0, 2.0, 3.0)])
            assert len(ct) == 1
            assert ct.original_count == 1


class TestErrorBoundInvariant:
    """Every compressor keeps max_deviation_from(original) <= epsilon.

    Uniform sampling has no analytic guarantee; at period 3 on this smooth
    synthetic track the measured deviation stays within the same tolerance,
    which is what the comparison in the paper relies on.
    """

    @pytest.mark.parametrize("compressor", full_suite(), ids=lambda c: c.name)
    def test_10k_point_one_pass_within_bound(self, compressor, track):
        for p in track:
            compressor.push(p)
        compressed = compressor.finish()
        assert compressed.original_count == N
        assert 1 < len(compressed) < N  # actually compresses
        deviation = compressed.max_deviation_from(track)
        assert deviation <= EPSILON * (1.0 + 1e-9), compressor.name
        times = [k.t for k in compressed.key_points]
        assert times == sorted(times)
        assert compressed.algorithm == compressor.name

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_error_bounded_compressors_on_noisy_tracks(self, seed):
        noisy = synthetic_track(2000, seed=seed, noise_sigma=2.5)
        for compressor in (
            BQSCompressor(EPSILON),
            FastBQSCompressor(EPSILON),
            DeadReckoningCompressor(EPSILON),
            DouglasPeucker(EPSILON),
            TDTRCompressor(EPSILON),
        ):
            compressed = compressor.compress(noisy)
            assert compressed.max_deviation_from(noisy) <= EPSILON * (1.0 + 1e-9)

    def test_co_timestamped_key_points_audited_fairly(self):
        """Regression: a burst of fixes sharing one timestamp used to bind
        every point to the first zero-duration segment in the audit."""
        square = [
            PlanePoint(0.0, 0.0, 0.0),
            PlanePoint(10.0, 0.0, 0.0),
            PlanePoint(10.0, 10.0, 0.0),
            PlanePoint(0.0, 10.0, 0.0),
        ]
        compressed = DouglasPeucker(1.0).compress(square)
        assert len(compressed) == 4  # kept verbatim: a zero-error result
        assert compressed.max_deviation_from(square) == pytest.approx(0.0)
        from repro.model import max_synchronized_deviation

        assert max_synchronized_deviation(compressed, square) == pytest.approx(0.0)

    def test_straight_line_compresses_to_two_points(self):
        line = [PlanePoint(float(i), 0.0, float(i)) for i in range(1000)]
        for compressor in (BQSCompressor(1.0), FastBQSCompressor(1.0)):
            compressed = compressor.compress(line)
            assert len(compressed) == 2


class TestBQSBufferBehaviour:
    """Paper Section V: the bounds decide commits without the buffer; the
    buffered exact-deviation path is only a fallback for the uncertain band."""

    def test_bounds_decide_majority_without_buffer(self, track):
        c = BQSCompressor(EPSILON)
        for p in track:
            c.push(p)
        c.finish()
        stats = c.stats
        assert stats.get(Decision.UPPER_BOUND, 0) > 0
        exact = stats.get(Decision.EXACT_ACCEPT, 0) + stats.get(
            Decision.EXACT_COMMIT, 0
        )
        bound_decided = stats.get(Decision.UPPER_BOUND, 0) + stats.get(
            Decision.LOWER_BOUND, 0
        )
        assert bound_decided > exact  # exact computation is the minority path
        # The pre-split "exact" label is deprecated and no longer recorded.
        assert Decision.EXACT not in stats

    def test_lower_bound_commits_without_exact_check(self):
        """A sharp 90-degree excursion is refuted by the lower bound alone."""
        east = [PlanePoint(float(i), 0.0, float(i)) for i in range(0, 200, 2)]
        north = [
            PlanePoint(198.0, float(i + 2), 200.0 + i) for i in range(0, 200, 2)
        ]
        c = BQSCompressor(5.0)
        for p in east + north:
            c.push(p)
        c.finish()
        assert c.stats.get(Decision.LOWER_BOUND, 0) > 0

    def test_retained_state_clears_on_segment_split(self, track):
        c = BQSCompressor(EPSILON)
        saw_nonempty = False
        for p in track[:2000]:
            result = c.push(p)
            if result.committed and result.decided_by != Decision.INIT:
                # The quadrant hulls restart with the freshly opened segment.
                assert c.buffered_points == 1
            saw_nonempty = saw_nonempty or c.buffered_points > 1
        assert saw_nonempty

    def test_default_mode_keeps_no_buffer_and_sublinear_state(self, track):
        """The production path retains hull vertices only — no point buffer,
        and far fewer retained points than the longest segment."""
        c = BQSCompressor(EPSILON)
        for p in track[:5000]:
            c.push(p)
        assert c._buffer is None
        assert c.audit_buffered == 0
        assert 0 < c.buffer_peak < 5000
        longest_segment = max(
            b.t - a.t for a, b in zip(c.key_points, c.key_points[1:])
        )
        assert c.buffer_peak < longest_segment

    def test_bounds_bracket_exact_deviation(self, track):
        """lower <= exact <= upper on live quadrant state, many arrivals."""
        from repro.geometry import max_distance_to_line_origin

        c = BQSCompressor(EPSILON, debug_audit=True)
        checked = 0
        for p in track[:1500]:
            anchor = c._anchor
            if anchor is not None and c.audit_buffered >= 2:
                direction = (p.x - anchor.x, p.y - anchor.y)
                interior = [
                    (q.x - anchor.x, q.y - anchor.y) for q in c._buffer
                ]
                exact = max_distance_to_line_origin(interior, direction)
                lower = max(q.lower_bound(direction) for q in c._quadrants)
                upper = max(q.upper_bound(direction) for q in c._quadrants)
                assert lower <= exact + 1e-9
                assert exact <= upper + 1e-9
                checked += 1
            c.push(p)
        assert checked > 1000

    def test_hull_summarises_buffer_exactly(self, track):
        """Hull-vertex max deviation equals the buffered exact deviation."""
        from repro.geometry import max_distance_to_line_origin

        c = BQSCompressor(EPSILON, debug_audit=True)
        checked = 0
        for p in track[:1200]:
            anchor = c._anchor
            if anchor is not None and c.audit_buffered >= 2:
                direction = (p.x - anchor.x, p.y - anchor.y)
                buffered = [
                    (q.x - anchor.x, q.y - anchor.y) for q in c._buffer
                ]
                exact = max_distance_to_line_origin(buffered, direction)
                via_hull = max(
                    q.hull_max_deviation(direction) for q in c._quadrants
                )
                assert via_hull == pytest.approx(exact, abs=1e-9)
                checked += 1
            c.push(p)
        assert checked > 800

    def test_significant_points_capped_at_eight(self, track):
        c = BQSCompressor(EPSILON)
        for p in track[:1500]:
            c.push(p)
            for q in c._quadrants:
                assert len(q.significant_points()) <= 8


class TestFastBQSConstantState:
    """Acceptance criterion: Fast-BQS keeps O(1) state per point."""

    def test_never_buffers(self, track):
        c = FastBQSCompressor(EPSILON)
        for p in track:
            c.push(p)
            assert c.buffered_points == 0
        c.finish()

    def test_state_point_count_constant(self, track):
        c = FastBQSCompressor(EPSILON)
        for p in track:
            c.push(p)
            assert c.state_point_count() <= 2
            assert len(c._quadrants) == 4
            for q in c._quadrants:
                # Hull-free quadrants hold aggregate floats only.
                assert q.hull == []
                assert q.significant_points() == []

    def test_no_buffer_attribute(self):
        assert not hasattr(FastBQSCompressor(EPSILON), "_buffer")

    def test_fast_bqs_is_conservative_vs_full_bqs(self, track):
        """Dropping the exact fallback can only split more, never violate."""
        full = BQSCompressor(EPSILON).compress(track)
        fast = FastBQSCompressor(EPSILON).compress(track)
        assert len(fast) >= len(full)


class TestBaselineSpecifics:
    def test_uniform_period_controls_rate(self, track):
        ct = UniformSampler(10).compress(track)
        assert len(ct) == pytest.approx(N / 10, rel=0.01)
        assert math.isinf(UniformSampler(10).epsilon)

    def test_dead_reckoning_derates_threshold(self):
        dr = DeadReckoningCompressor(EPSILON)
        assert dr._threshold == pytest.approx(EPSILON / 2)
        with pytest.raises(ValueError):
            DeadReckoningCompressor(EPSILON, safety_factor=0.0)

    def test_batch_baselines_buffer_until_finish(self, track):
        dp = DouglasPeucker(EPSILON)
        subset = track[:500]
        for p in subset:
            dp.push(p)
        assert dp.buffered_points == len(subset)
        dp.finish()
        assert dp.buffered_points == 0

    def test_douglas_peucker_matches_recursive_reference(self):
        """Iterative stack traversal equals the textbook recursion."""
        from repro.geometry import point_line_distance

        track = synthetic_track(300, seed=11)

        def reference(points, eps):
            keep = {0, len(points) - 1}

            def recurse(lo, hi):
                if hi - lo < 2:
                    return
                worst, idx = -1.0, -1
                for i in range(lo + 1, hi):
                    d = point_line_distance(
                        points[i].xy, points[lo].xy, points[hi].xy
                    )
                    if d > worst:
                        worst, idx = d, i
                if worst > eps:
                    keep.add(idx)
                    recurse(lo, idx)
                    recurse(idx, hi)

            recurse(0, len(points) - 1)
            return [points[i] for i in sorted(keep)]

        expected = reference(track, 8.0)
        actual = DouglasPeucker(8.0).compress(track)
        assert list(actual.key_points) == expected

    def test_tdtr_bounds_sed(self):
        from repro.model import max_synchronized_deviation

        track = synthetic_track(3000, seed=13)
        ct = TDTRCompressor(EPSILON).compress(track)
        assert max_synchronized_deviation(ct, track) <= EPSILON * (1.0 + 1e-9)


class TestBatchBaselineRecursionDepth:
    """Regression: the split-at-worst-point traversal must be iterative.

    A decreasing-amplitude zigzag pins the worst point next to the start of
    every range, so the equivalent recursion depth is ``n - 2`` — a
    recursive implementation would overflow the interpreter stack for any
    monotone trajectory longer than ``sys.getrecursionlimit()``, long
    before the 100k-point streams the benchmarks run.
    """

    @staticmethod
    def _deep_zigzag(n):
        # Monotone in x and t; |y| decreases with i so every range's worst
        # deviation is attained right after its left end.
        return [
            PlanePoint(
                float(i),
                (50.0 + (n - i) * 0.01) * (1.0 if i % 2 == 0 else -1.0),
                float(i),
            )
            for i in range(n)
        ]

    def test_equivalent_depth_exceeds_recursion_limit(self):
        import sys

        n = sys.getrecursionlimit() + 100
        points = self._deep_zigzag(n)
        dp = DouglasPeucker(1.0)
        # Instrument the same explicit-stack traversal with a depth counter.
        from repro.model import TrajectoryColumns

        cols = TrajectoryColumns.from_points(points)
        max_depth = 0
        stack = [(0, n - 1, 1)]
        while stack:
            lo, hi, depth = stack.pop()
            if depth > max_depth:
                max_depth = depth
            if hi - lo < 2:
                continue
            worst, idx = dp._scan_worst(cols.ts, cols.xs, cols.ys, lo, hi)
            if worst > 1.0:
                stack.append((lo, idx, depth + 1))
                stack.append((idx, hi, depth + 1))
        assert max_depth > sys.getrecursionlimit()

    @pytest.mark.parametrize(
        "make", [lambda: DouglasPeucker(1.0), lambda: TDTRCompressor(1.0)],
        ids=["douglas-peucker", "td-tr"],
    )
    def test_deep_monotone_stream_compresses_without_overflow(self, make):
        import sys

        n = sys.getrecursionlimit() + 100
        points = self._deep_zigzag(n)
        compressed = make().compress(points)  # must not RecursionError
        # Every zigzag tooth deviates far beyond epsilon: all points kept.
        assert len(compressed) == n
        assert compressed.max_deviation_from(points) <= 1.0 + 1e-9
