"""Zone-selection and bulk-projection tests (the geodetic hardening sweep).

Three layers:

* ``utm_zone_for`` properties — the antimeridian canonicalization bugfix
  (±180° must be the same physical meridian and therefore the same
  zone), every zone boundary, and the Norway/Svalbard exceptions.
* Forward/inverse round trips at the awkward places — zone edges, the
  antimeridian, the exception bands — under 1 mm.
* ``forward_columns`` — the vectorized path must be *bit-identical* to a
  per-point ``forward`` loop on every projection (the geodetic engine's
  determinism rests on it).
"""

import math
import random

import pytest

from repro.model.projection import (
    LocalTangentProjection,
    TransverseMercator,
    UTMProjection,
    utm_zone_for,
)


class TestZoneSelection:
    def test_antimeridian_is_one_zone(self):
        """The confirmed bug: +180 and -180 are the same meridian and must
        agree (both are zone 1's western edge)."""
        assert utm_zone_for(0.0, 180.0) == 1
        assert utm_zone_for(0.0, -180.0) == 1
        assert utm_zone_for(0.0, 180.0) == utm_zone_for(0.0, -180.0)

    @pytest.mark.parametrize("winding", (-720.0, -360.0, 0.0, 360.0, 720.0))
    def test_antimeridian_survives_winding(self, winding):
        assert utm_zone_for(10.0, 180.0 + winding) == 1
        assert utm_zone_for(10.0, -180.0 + winding) == 1

    @pytest.mark.parametrize("lat", (-45.0, 0.0, 45.0))
    def test_every_zone_boundary(self, lat):
        """Each boundary meridian belongs to the zone east of it, and a
        nudge west lands in the zone west of it."""
        for zone in range(1, 61):
            west_edge = zone * 6.0 - 186.0
            assert utm_zone_for(lat, west_edge) == zone
            east_of = utm_zone_for(lat, west_edge + 3.0)
            assert east_of == zone
            if zone > 1:
                assert utm_zone_for(lat, west_edge - 1e-9) == zone - 1

    def test_zone_matches_central_meridian(self):
        """A coordinate is always within 3° of its zone's central meridian
        (exception bands aside)."""
        rng = random.Random(77)
        for _ in range(300):
            lat = rng.uniform(-55.9, 55.9)  # below the exception bands
            lon = rng.uniform(-180.0, 180.0)
            zone = utm_zone_for(lat, lon)
            cm = zone * 6.0 - 183.0
            assert abs(lon - cm) <= 3.0 + 1e-9

    def test_norway_32v_widened(self):
        assert utm_zone_for(60.0, 4.0) == 32  # would be 31 without the rule
        assert utm_zone_for(56.0, 3.0) == 32
        assert utm_zone_for(63.999, 11.999) == 32
        # Just outside the band in each direction.
        assert utm_zone_for(55.999, 4.0) == 31
        assert utm_zone_for(64.0, 4.0) == 31
        assert utm_zone_for(60.0, 2.999) == 31
        assert utm_zone_for(60.0, 12.0) == 33

    @pytest.mark.parametrize(
        "lon,zone",
        [(0.0, 31), (8.999, 31), (9.0, 33), (20.999, 33), (21.0, 35),
         (32.999, 35), (33.0, 37), (41.999, 37)],
    )
    def test_svalbard_bands(self, lon, zone):
        assert utm_zone_for(75.0, lon) == zone
        assert utm_zone_for(84.0, lon) == zone
        # South of 72° the standard grid resumes.
        assert utm_zone_for(71.999, lon) == int((lon + 180.0) // 6.0) + 1

    def test_for_coordinate_hemisphere(self):
        assert UTMProjection.for_coordinate(41.0, 12.0) == UTMProjection(
            zone=33, south=False
        )
        assert UTMProjection.for_coordinate(-23.0, -48.0) == UTMProjection(
            zone=23, south=True
        )


class TestZoneEdgeRoundTrips:
    """Forward/inverse closure under 1 mm at the awkward coordinates."""

    def _assert_round_trip(self, projection, lat, lon, tol_m=1e-3):
        x, y = projection.forward(lat, lon)
        lat2, lon2 = projection.inverse(x, y)
        x2, y2 = projection.forward(lat2, lon2)
        assert math.hypot(x2 - x, y2 - y) <= tol_m, (lat, lon)
        # Degrees agree too (1 mm ≈ 9e-9 degrees of latitude).
        assert abs(lat2 - lat) <= 1e-7

    @pytest.mark.parametrize("case", range(40))
    def test_random_zone_edges(self, case):
        rng = random.Random(5200 + case)
        zone = rng.randrange(1, 61)
        south = rng.random() < 0.5
        projection = UTMProjection(zone=zone, south=south)
        cm = zone * 6.0 - 183.0
        # Edges of the nominal strip, plus a boundary-crossing overshoot.
        lon = cm + rng.choice((-3.0, 3.0, -3.5, 3.5, rng.uniform(-3, 3)))
        lat = rng.uniform(2.0, 80.0) * (-1.0 if south else 1.0)
        self._assert_round_trip(projection, lat, lon)

    def test_antimeridian_round_trip(self):
        for lon in (180.0, -180.0, 179.999, -179.999):
            projection = UTMProjection.for_coordinate(12.0, lon)
            assert projection.zone in (1, 60)
            self._assert_round_trip(projection, 12.0, lon)

    def test_exception_band_round_trips(self):
        for lat, lon in ((59.9, 5.1), (75.0, 10.0), (80.0, 34.0)):
            projection = UTMProjection.for_coordinate(lat, lon)
            self._assert_round_trip(projection, lat, lon)

    def test_equator_crossing(self):
        north = UTMProjection(zone=33, south=False)
        south = UTMProjection(zone=33, south=True)
        xn, yn = north.forward(0.001, 15.0)
        xs, ys = south.forward(0.001, 15.0)
        assert xn == xs
        assert ys - yn == pytest.approx(10_000_000.0)
        self._assert_round_trip(south, -0.001, 15.0)


class TestForwardColumns:
    """The bulk path must be bit-identical to the scalar path."""

    def _columns(self, rng, n, lat0, lon0, spread):
        lats = [lat0 + rng.uniform(-spread, spread) for _ in range(n)]
        lons = [lon0 + rng.uniform(-spread, spread) for _ in range(n)]
        return lats, lons

    @pytest.mark.parametrize("case", range(8))
    def test_utm_bit_identical(self, case):
        rng = random.Random(6400 + case)
        zone = rng.randrange(1, 61)
        south = rng.random() < 0.5
        projection = UTMProjection(zone=zone, south=south)
        lat0 = rng.uniform(-70, -5) if south else rng.uniform(5, 70)
        lats, lons = self._columns(
            rng, 200, lat0, zone * 6.0 - 183.0, rng.choice((0.01, 1.0, 3.0))
        )
        xs, ys = projection.forward_columns(lats, lons)
        assert len(xs) == len(ys) == 200
        for i in range(200):
            x, y = projection.forward(lats[i], lons[i])
            assert xs[i] == x and ys[i] == y

    def test_transverse_mercator_bit_identical(self):
        rng = random.Random(991)
        tm = TransverseMercator(central_meridian_deg=9.0, scale=0.9996)
        lats, lons = self._columns(rng, 100, 48.0, 9.0, 2.0)
        xs, ys = tm.forward_columns(lats, lons)
        for i in range(100):
            assert (xs[i], ys[i]) == tm.forward(lats[i], lons[i])

    def test_local_tangent_bit_identical(self):
        rng = random.Random(992)
        projection = LocalTangentProjection(47.36, 8.55)
        lats, lons = self._columns(rng, 100, 47.36, 8.55, 0.05)
        xs, ys = projection.forward_columns(lats, lons)
        for i in range(100):
            assert (xs[i], ys[i]) == projection.forward(lats[i], lons[i])

    def test_empty_and_mismatched(self):
        projection = UTMProjection(zone=31)
        xs, ys = projection.forward_columns([], [])
        assert len(xs) == 0 and len(ys) == 0
        with pytest.raises(ValueError):
            projection.forward_columns([1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            LocalTangentProjection(0.0, 0.0).forward_columns([1.0], [])
