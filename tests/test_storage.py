"""Storage tests: the segmented store, crash recovery, queries, the CLI.

The two load-bearing guarantees:

* **Durability** — whatever sequence of appends, tombstones, crashes
  (simulated by truncating/corrupting segment tails) and compactions a
  store lives through, reopening it recovers exactly the undamaged
  records, and the index matches what :meth:`read` decodes.
* **Query correctness** — on fixtures whose ground truth is known, the
  exact-mode answers equal a brute-force scan of the *uncompressed*
  fixes, and on arbitrary random rectangles the error-bound bracket
  ``definite ⊆ brute ⊆ exact ⊆ approximate`` always holds.
"""

import functools
import math
import random

import pytest

from repro.compression import BQSCompressor
from repro.engine import ShardedStreamEngine, StreamEngine, fleet_fixes, iter_fix_batches
from repro.model import CompressedTrajectory, PlanePoint
from repro.storage import (
    QueryMatch,
    StoreSink,
    TrajectoryStore,
    range_query,
    time_window_query,
)
from repro.storage.__main__ import main as storage_main
from repro.storage.store import shard_store_sink


def _trajectory(points, original=None, epsilon=10.0, algorithm="bqs"):
    return CompressedTrajectory(
        key_points=tuple(points),
        original_count=original if original is not None else len(points),
        tolerance=epsilon,
        algorithm=algorithm,
    )


def _walk(cx, cy, n=40, radius=200.0, seed=1):
    """A deterministic loop around (cx, cy), radius-bounded."""
    rng = random.Random(seed)
    pts = []
    for k in range(n):
        angle = 2.0 * math.pi * k / n
        r = radius * (0.6 + 0.4 * rng.random())
        pts.append(
            PlanePoint(cx + r * math.cos(angle), cy + r * math.sin(angle), float(k))
        )
    return pts


@pytest.fixture
def store(tmp_path):
    with TrajectoryStore(tmp_path / "store") as s:
        yield s


class TestStore:
    def test_append_read_round_trip(self, store):
        pts = _walk(0.0, 0.0)
        ct = BQSCompressor(10.0).compress(pts)
        ref = store.append("dev-a", ct)
        dec = store.read(ref)
        assert dec.algorithm == "bqs"
        assert len(dec.columns) == len(ct.key_points)
        assert ref.n_key_points == len(ct.key_points)
        assert ref.epsilon == 10.0
        # Envelope agrees exactly with the decoded coordinates.
        assert ref.x_min == min(dec.columns.xs)
        assert ref.x_max == max(dec.columns.xs)
        assert ref.t_min == dec.columns.ts[0]
        assert ref.t_max == dec.columns.ts[-1]

    def test_empty_trajectory_rejected(self, store):
        with pytest.raises(ValueError):
            store.append("dev-a", CompressedTrajectory((), 0))

    def test_reopen_rebuilds_index(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            for i in range(7):
                s.append(f"dev-{i % 3}", _trajectory(_walk(i * 10.0, 0.0)))
        with TrajectoryStore(path) as s:
            assert s.record_count == 7
            assert sorted(s.devices()) == ["dev-0", "dev-1", "dev-2"]
            assert len(s.device_manifest("dev-0")) == 3
            for ref, dec in s.iter_decoded():
                assert len(dec.columns) == ref.n_key_points

    def test_segment_rolling(self, tmp_path):
        with TrajectoryStore(tmp_path / "s", segment_max_bytes=4096) as s:
            for i in range(40):
                s.append("dev", _trajectory(_walk(0.0, 0.0, n=30, seed=i)))
            assert len(s.segment_names) > 1
            assert s.record_count == 40
        with TrajectoryStore(tmp_path / "s") as s:
            assert s.record_count == 40

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            for i in range(5):
                s.append(f"d{i}", _trajectory(_walk(0.0, 0.0, seed=i)))
            segment = path / s.segment_names[-1]
        # Crash simulation: chop bytes off the tail record.
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])
        with TrajectoryStore(path) as s:
            assert s.record_count == 4  # the last record died, others live
            assert s.scan_report  # and the damage is reported
            # the store keeps working: appends go after the damage point
            s.append("fresh", _trajectory(_walk(1.0, 1.0)))
        with TrajectoryStore(path) as s:
            assert "fresh" in s.devices()

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            for i in range(3):
                s.append(f"d{i}", _trajectory(_walk(0.0, 0.0, seed=i)))
            segment = path / s.segment_names[-1]
            refs = s.records()
        data = bytearray(segment.read_bytes())
        data[refs[1].offset + 12] ^= 0xFF  # flip a byte inside record 1
        segment.write_bytes(bytes(data))
        with TrajectoryStore(path) as s:
            assert s.record_count == 1  # records after the damage are gone

    def test_zeroed_tail_tolerated(self, tmp_path):
        """A zero-filled tail (crc32(b"") == 0 passes the CRC!) must be
        treated as damage, not crash the open scan."""
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            for i in range(3):
                s.append(f"d{i}", _trajectory(_walk(0.0, 0.0, seed=i)))
            segment = path / s.segment_names[-1]
        with open(segment, "ab") as handle:
            handle.write(bytes(16))  # crash artifact: preallocated zeros
        with TrajectoryStore(path) as s:
            assert s.record_count == 3
            assert s.scan_report
            s.append("after", _trajectory(_walk(1.0, 1.0)))
        with TrajectoryStore(path) as s:
            assert "after" in s.devices()

    def test_garbage_payload_tolerated(self, tmp_path):
        """A frame whose CRC matches garbage bytes must not crash the scan."""
        import struct
        import zlib as _zlib

        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            s.append("d0", _trajectory(_walk(0.0, 0.0)))
            segment = path / s.segment_names[-1]
        junk = b"\xff\xfe\xfd garbage"
        with open(segment, "ab") as handle:
            handle.write(struct.pack("<II", len(junk), _zlib.crc32(junk)) + junk)
        with TrajectoryStore(path) as s:
            assert s.record_count == 1
            assert s.scan_report

    def test_tombstone_and_compact(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            for i in range(6):
                s.append(f"d{i % 2}", _trajectory(_walk(float(i), 0.0, seed=i)))
            assert s.delete_device("d0") == 3
            assert s.devices() == ["d1"]
            before = s.total_bytes()
            stats = s.compact()
            assert stats["records"] == 3
            assert stats["bytes_after"] < before
            assert s.record_count == 3
        # Deletion and compaction survive reopen.
        with TrajectoryStore(path) as s:
            assert s.devices() == ["d1"]
            assert s.record_count == 3
            for ref, dec in s.iter_decoded():
                assert ref.device_id == "d1"

    def test_tombstone_without_compact_survives_reopen(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            s.append("a", _trajectory(_walk(0.0, 0.0)))
            s.append("b", _trajectory(_walk(9.0, 0.0)))
            s.delete_device("a")
        with TrajectoryStore(path) as s:
            assert s.devices() == ["b"]
            # a device reborn after its tombstone is live again
            s.append("a", _trajectory(_walk(5.0, 5.0)))
        with TrajectoryStore(path) as s:
            assert sorted(s.devices()) == ["a", "b"]

    def test_crashed_compaction_orphan_not_resurrected(self, tmp_path):
        """An orphan segment holding valid frames under the next segment
        number (a compaction that died before its manifest commit) must be
        truncated when the name is reused — not appended to."""
        import json as _json

        path = tmp_path / "s"
        with TrajectoryStore(path, segment_max_bytes=4096) as s:
            s.append("a", _trajectory(_walk(0.0, 0.0)))
            s.append("b", _trajectory(_walk(9.0, 0.0)))
        manifest = _json.loads((path / "manifest.json").read_text())
        orphan = path / f"seg-{manifest['next_segment']:08d}.log"
        orphan.write_bytes((path / manifest["segments"][0]).read_bytes())
        with TrajectoryStore(path, segment_max_bytes=4096) as s:
            assert s.record_count == 2  # orphan not scanned
            for i in range(40):  # force rolls through the orphan's name
                s.append("c", _trajectory(_walk(1.0, 1.0, n=30, seed=i)))
            for ref, dec in s.iter_decoded():  # every read CRC-verifies
                assert len(dec.columns) == ref.n_key_points
        with TrajectoryStore(path) as s:
            assert s.record_count == 42  # no stale frames resurrected
            assert sorted(s.devices()) == ["a", "b", "c"]

    def test_orphan_segments_ignored_and_reaped(self, tmp_path):
        path = tmp_path / "s"
        with TrajectoryStore(path) as s:
            s.append("a", _trajectory(_walk(0.0, 0.0)))
        # An orphan left by a hypothetical crashed compaction.
        (path / "seg-00990000.log").write_bytes(b"garbage that is not framed")
        with TrajectoryStore(path) as s:
            assert s.record_count == 1  # orphan not scanned
            s.compact()
        assert not (path / "seg-00990000.log").exists()

    def test_closed_store_rejects_writes(self, tmp_path):
        s = TrajectoryStore(tmp_path / "s")
        s.append("a", _trajectory(_walk(0.0, 0.0)))
        s.close()
        with pytest.raises(RuntimeError):
            s.append("a", _trajectory(_walk(0.0, 0.0)))


class TestStoreSink:
    def test_engine_streams_to_disk(self, tmp_path):
        ids, cols = fleet_fixes(12, 80, seed=5)
        sink = StoreSink(tmp_path / "s")
        engine = StreamEngine(
            functools.partial(_bqs_factory, 10.0), collect=False, sink=sink
        )
        for batch in iter_fix_batches(ids, cols, 512):
            engine.push_columns(*batch)
        engine.finish_all()
        sink.close()
        assert engine.results == {}  # nothing retained in memory
        with TrajectoryStore(tmp_path / "s") as s:
            assert s.record_count == 12
            assert sorted(s.devices()) == sorted(set(ids))
            # stored output equals an in-memory run, at quantum precision
            reference = StreamEngine(functools.partial(_bqs_factory, 10.0))
            for batch in iter_fix_batches(ids, cols, 512):
                reference.push_columns(*batch)
            expected = reference.finish_all()
            for device_id, trajectories in expected.items():
                (dec,) = [d for _, d in _device_decoded(s, device_id)]
                assert len(dec.columns) == len(trajectories[0].key_points)

    def test_eviction_reaches_store(self, tmp_path):
        """LRU-evicted devices land on disk, not on the floor."""
        sink = StoreSink(tmp_path / "s")
        engine = StreamEngine(
            functools.partial(_bqs_factory, 10.0),
            collect=False,
            sink=sink,
            max_devices=2,
        )
        for i in range(6):
            engine.push_fix(f"d{i}", float(i), float(i), 0.0)
        assert engine.evictions == 4
        engine.finish_all()
        sink.close()
        with TrajectoryStore(tmp_path / "s") as s:
            assert sorted(s.devices()) == [f"d{i}" for i in range(6)]

    def test_sharded_sink_factory(self, tmp_path):
        ids, cols = fleet_fixes(10, 60, seed=3)
        factory = functools.partial(_bqs_factory, 10.0)
        with ShardedStreamEngine(
            factory,
            workers=2,
            collect=False,
            sink_factory=functools.partial(shard_store_sink, str(tmp_path / "s")),
        ) as engine:
            for batch in iter_fix_batches(ids, cols, 256):
                engine.push_columns(*batch)
            merged = engine.finish_all()
        assert merged == {}  # collect off: disk is the only output
        seen = []
        for shard_dir in sorted((tmp_path / "s").iterdir()):
            with TrajectoryStore(shard_dir) as s:
                seen.extend(s.devices())
        assert sorted(seen) == sorted(set(ids))


def _bqs_factory(epsilon, device_id):
    return BQSCompressor(epsilon)


def _device_decoded(store, device_id):
    return [
        (ref, store.read(ref)) for ref in store.device_manifest(device_id)
    ]


class TestQueries:
    """Separated-fixture equality plus the random-rect bracket property."""

    CENTERS = [(0.0, 0.0), (1500.0, 0.0), (3000.0, 0.0), (4500.0, 0.0)]

    @pytest.fixture
    def fixture(self, tmp_path):
        """Four devices in well-separated neighbourhoods + raw originals."""
        originals = {}
        store = TrajectoryStore(tmp_path / "q")
        for i, (cx, cy) in enumerate(self.CENTERS):
            pts = _walk(cx, cy, n=60, radius=200.0, seed=10 + i)
            originals[f"dev-{i}"] = pts
            store.append(f"dev-{i}", BQSCompressor(10.0).compress(pts))
        yield store, originals
        store.close()

    @staticmethod
    def _brute_range(originals, rect):
        x0, y0, x1, y1 = rect
        return {
            d
            for d, pts in originals.items()
            if any(x0 <= p.x <= x1 and y0 <= p.y <= y1 for p in pts)
        }

    @staticmethod
    def _brute_window(originals, t0, t1):
        return {
            d
            for d, pts in originals.items()
            if pts[0].t <= t1 and pts[-1].t >= t0
        }

    def test_time_window_equals_brute_force(self, fixture):
        store, originals = fixture
        for (t0, t1) in [(0.0, 59.0), (10.0, 20.0), (59.0, 99.0), (70.0, 80.0)]:
            got = {m.device_id for m in time_window_query(store, t0, t1)}
            assert got == self._brute_window(originals, t0, t1), (t0, t1)

    def test_range_exact_equals_brute_force(self, fixture):
        store, originals = fixture
        rects = [
            (cx - 400.0, cy - 400.0, cx + 400.0, cy + 400.0)
            for cx, cy in self.CENTERS
        ]
        rects.append((-400.0, -400.0, 1900.0, 400.0))  # devices 0 and 1
        rects.append((-10_000.0, 5_000.0, 10_000.0, 6_000.0))  # nobody
        rects.append((-400.0, -400.0, 4900.0, 400.0))  # everybody
        for rect in rects:
            brute = self._brute_range(originals, rect)
            exact = {m.device_id for m in range_query(store, rect)}
            assert exact == brute, rect

    def test_definite_matches_are_proven(self, fixture):
        store, originals = fixture
        rect = (-400.0, -400.0, 400.0, 400.0)
        matches = range_query(store, rect)
        assert matches and all(m.definite for m in matches)

    def test_random_rect_bracket_property(self, fixture):
        """definite ⊆ brute ⊆ exact ⊆ approximate, on arbitrary rects."""
        store, originals = fixture
        rng = random.Random(77)
        for _ in range(60):
            x0 = rng.uniform(-600.0, 4800.0)
            y0 = rng.uniform(-600.0, 600.0)
            rect = (
                x0,
                y0,
                x0 + rng.uniform(1.0, 2000.0),
                y0 + rng.uniform(1.0, 600.0),
            )
            brute = self._brute_range(originals, rect)
            exact_matches = range_query(store, rect)
            exact = {m.device_id for m in exact_matches}
            definite = {m.device_id for m in exact_matches if m.definite}
            approx = {
                m.device_id
                for m in range_query(store, rect, mode="approximate")
            }
            assert definite <= brute, rect
            assert brute <= exact, rect
            assert exact <= approx, rect

    def test_windowed_range_query(self, fixture):
        store, originals = fixture
        # Device 0's walk: restrict to a window; the brute answer uses
        # only fixes inside the window (endpoints of covering chords are
        # within it for this 1 Hz fixture).
        rect = (-400.0, -400.0, 400.0, 400.0)
        full = {m.device_id for m in range_query(store, rect)}
        assert full == {"dev-0"}
        outside = range_query(store, rect, t0=1000.0, t1=2000.0)
        assert outside == []

    def test_validation(self, fixture):
        store, _ = fixture
        with pytest.raises(ValueError):
            range_query(store, (1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            range_query(store, (0.0, 0.0, 1.0, 1.0), mode="fuzzy")
        with pytest.raises(ValueError):
            range_query(store, (0.0, 0.0, 1.0, 1.0), t0=5.0)
        with pytest.raises(ValueError):
            time_window_query(store, 10.0, 5.0)

    def test_unbounded_algorithm_gets_no_expansion(self, tmp_path):
        """An ε-less record matches on its polyline only."""
        with TrajectoryStore(tmp_path / "u") as store:
            pts = [PlanePoint(0.0, 0.0, 0.0), PlanePoint(100.0, 0.0, 1.0)]
            store.append(
                "u", _trajectory(pts, epsilon=math.inf, algorithm="uniform")
            )
            on_line = {m.device_id for m in range_query(store, (40.0, -1.0, 60.0, 1.0))}
            assert on_line == {"u"}
            near_line = range_query(store, (40.0, 5.0, 60.0, 10.0))
            assert near_line == []  # 5 m off: a bounded record would match


class TestCLI:
    def test_ingest_stat_query_compact(self, tmp_path, capsys):
        path = str(tmp_path / "cli")
        assert storage_main(
            ["ingest", path, "--devices", "8", "--fixes", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 trajectories" in out and "B/raw fix" in out

        assert storage_main(["stat", path]) == 0
        out = capsys.readouterr().out
        assert "records    8" in out

        assert storage_main(["query", path, "--t0", "0", "--t1", "10"]) == 0
        captured = capsys.readouterr()
        assert "8 record(s), 8 device(s)" in captured.err

        assert storage_main(
            ["query", path, "--rect=-10000,-10000,10000,10000", "--mode", "approximate"]
        ) == 0
        captured = capsys.readouterr()
        assert "8 device(s)" in captured.err

        assert storage_main(["compact", path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("compacted: 8 live records")

    def test_query_requires_predicate(self, tmp_path):
        path = str(tmp_path / "cli2")
        storage_main(["ingest", path, "--devices", "1", "--fixes", "5"])
        with pytest.raises(SystemExit):
            storage_main(["query", path])
        with pytest.raises(SystemExit):
            storage_main(["query", path, "--t0", "1"])
        with pytest.raises(SystemExit):
            storage_main(["query", path, "--rect", "1,2,3"])


class TestStoreFormat:
    """The on-disk format marker (format 2 added zone-stamped envelopes)."""

    def test_manifest_carries_format(self, tmp_path):
        import json as _json

        with TrajectoryStore(tmp_path / "s") as store:
            store.append("d", _trajectory(_walk(0.0, 0.0)))
        doc = _json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert doc["format"] == 3
        assert doc["generation"] == 0

    def test_old_format_rejected_with_clear_error(self, tmp_path):
        import json as _json

        path = tmp_path / "old"
        with TrajectoryStore(path) as store:
            store.append("d", _trajectory(_walk(0.0, 0.0)))
        doc = _json.loads((path / "manifest.json").read_text())
        del doc["format"]  # what a format-1 store's manifest looks like
        (path / "manifest.json").write_text(_json.dumps(doc))
        with pytest.raises(ValueError, match="format 1 is not supported"):
            TrajectoryStore(path)

    def test_unstamped_records_have_no_zone(self, tmp_path):
        with TrajectoryStore(tmp_path / "s") as store:
            ref = store.append("d", _trajectory(_walk(0.0, 0.0)))
            assert ref.utm_zone is None and ref.utm_south is False
            assert ref.projection() is None
            assert store.read(ref).utm_zone is None
        with TrajectoryStore(tmp_path / "s") as store:
            (ref,) = store.records()
            assert ref.utm_zone is None and ref.projection() is None
