"""Make ``src/`` importable even without PYTHONPATH or an installed package."""

import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
