"""Columnar ingestion tests: TrajectoryColumns and push_xyt ↔ push identity.

The columnar (struct-of-arrays) path must be a pure optimization: for every
compressor and every workload, feeding flat ``(ts, xs, ys)`` columns
through ``push_xyt`` must leave key points, stats, counts and info
*bit-identical* to pushing the materialized ``PlanePoint`` objects one at a
time — including across chunk boundaries, mixed entry points, mid-batch
validation failures, and the degenerate (stationary) streams that exercise
the zero-length path line.
"""

import math

import pytest

from repro.bench import WORKLOADS, make_workload
from repro.compression import (
    BQSCompressor,
    DeadReckoningCompressor,
    DouglasPeucker,
    FastBQSCompressor,
    TDTRCompressor,
    UniformSampler,
    synthetic_track,
)
from repro.model import PlanePoint, TrajectoryColumns


def _factories(epsilon):
    return [
        lambda: BQSCompressor(epsilon),
        lambda: FastBQSCompressor(epsilon),
        lambda: DeadReckoningCompressor(epsilon),
        lambda: UniformSampler(7, epsilon=epsilon),
        lambda: DouglasPeucker(epsilon),
        lambda: TDTRCompressor(epsilon),
    ]


class TestTrajectoryColumns:
    def test_round_trips_points(self):
        track = synthetic_track(50, seed=3)
        cols = TrajectoryColumns.from_points(track)
        assert len(cols) == 50
        assert cols.to_points() == [PlanePoint(p.x, p.y, p.t) for p in track]
        assert cols.point(7) == PlanePoint(track[7].x, track[7].y, track[7].t)

    def test_append_extend_iter_eq_clear(self):
        cols = TrajectoryColumns()
        cols.append(0.0, 1.0, 2.0)
        cols.extend([1.0, 2.0], [3.0, 5.0], [4.0, 6.0])
        assert list(cols) == [(0.0, 1.0, 2.0), (1.0, 3.0, 4.0), (2.0, 5.0, 6.0)]
        assert cols == TrajectoryColumns([0.0, 1.0, 2.0], [1.0, 3.0, 5.0], [2.0, 4.0, 6.0])
        assert cols != TrajectoryColumns()
        cols.clear()
        assert len(cols) == 0

    def test_from_fixes(self):
        cols = TrajectoryColumns.from_fixes([(0.0, 1.0, 2.0), (1.5, 3.0, 4.0)])
        assert list(cols.ts) == [0.0, 1.5]
        assert list(cols.xs) == [1.0, 3.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            TrajectoryColumns([0.0], [1.0, 2.0], [3.0])
        cols = TrajectoryColumns()
        with pytest.raises(ValueError, match="length mismatch"):
            cols.extend([0.0], [1.0], [2.0, 3.0])


class TestColumnarBitIdentity:
    """The acceptance-criterion property: columnar ≡ object path, exactly."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("epsilon", [3.0, 10.0])
    def test_every_compressor_on_every_workload(self, workload, epsilon):
        track = make_workload(workload, 1500, seed=11)
        cols = TrajectoryColumns.from_points(track)
        for make in _factories(epsilon):
            per_point = make()
            for p in track:
                per_point.push(p)
            reference = per_point.finish()

            columnar = make()
            consumed = columnar.push_xyt(cols.ts, cols.xs, cols.ys)
            fast = columnar.finish()

            assert consumed == len(track)
            assert fast.key_points == reference.key_points, (workload, columnar.name)
            assert columnar.stats == per_point.stats, (workload, columnar.name)
            assert columnar.pushed == per_point.pushed
            assert fast.info == reference.info, (workload, columnar.name)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_noisy_tracks_with_exact_fallbacks(self, seed):
        """Noise pushes BQS into its uncertain band: the exact-fallback and
        split paths must stay identical too."""
        track = synthetic_track(3000, seed=seed, noise_sigma=2.5)
        cols = TrajectoryColumns.from_points(track)
        for make in _factories(5.0):
            reference = make().compress(track)
            columnar = make()
            columnar.push_xyt(cols.ts, cols.xs, cols.ys)
            assert columnar.finish().key_points == reference.key_points

    def test_chunked_columnar_equals_one_batch(self):
        track = synthetic_track(2000, seed=3)
        cols = TrajectoryColumns.from_points(track)
        for make in _factories(10.0):
            whole = make()
            whole.push_xyt(cols.ts, cols.xs, cols.ys)
            chunked = make()
            for start in range(0, len(track), 263):
                stop = start + 263
                chunked.push_xyt(
                    cols.ts[start:stop], cols.xs[start:stop], cols.ys[start:stop]
                )
            assert whole.finish().key_points == chunked.finish().key_points
            assert whole.stats == chunked.stats

    def test_columnar_mixes_with_push_and_push_many(self):
        track = synthetic_track(1500, seed=9)
        cols = TrajectoryColumns.from_points(track)
        for make in _factories(10.0):
            mixed = make()
            mixed.push_xyt(cols.ts[:400], cols.xs[:400], cols.ys[:400])
            for p in track[400:600]:
                mixed.push(p)
            mixed.push_many(track[600:900])
            mixed.push_xyt(cols.ts[900:], cols.xs[900:], cols.ys[900:])
            pure = make()
            for p in track:
                pure.push(p)
            assert mixed.finish().key_points == pure.finish().key_points
            assert mixed.stats == pure.stats

    def test_stationary_stream_degenerate_path_line(self):
        """Co-located fixes collapse the path line to a point."""
        fix = [PlanePoint(5.0, 5.0, float(i)) for i in range(300)]
        cols = TrajectoryColumns.from_points(fix)
        for make in (lambda: BQSCompressor(4.0), lambda: FastBQSCompressor(4.0)):
            reference = make().compress(fix)
            columnar = make()
            columnar.push_xyt(cols.ts, cols.xs, cols.ys)
            result = columnar.finish()
            assert result.key_points == reference.key_points
            assert len(result) == 2

    def test_bqs_debug_audit_matches_columnar(self):
        """The audited reference mode cross-checks the columnar output."""
        track = synthetic_track(2000, seed=4, noise_sigma=1.5)
        cols = TrajectoryColumns.from_points(track)
        audited = BQSCompressor(6.0, debug_audit=True)
        audited.push_xyt(cols.ts, cols.xs, cols.ys)  # raises on divergence
        plain = BQSCompressor(6.0)
        plain.push_xyt(cols.ts, cols.xs, cols.ys)
        assert audited.finish().key_points == plain.finish().key_points


class TestColumnarValidation:
    @pytest.mark.parametrize("make", _factories(10.0), ids=lambda f: f().name)
    def test_monotonicity_enforced_with_prefix_consumed(self, make):
        c = make()
        with pytest.raises(ValueError, match="non-decreasing"):
            c.push_xyt([0.0, 1.0, 0.5, 2.0], [0.0, 1.0, 2.0, 3.0], [0.0] * 4)
        # The valid prefix was consumed; the stream stays usable.
        assert c.pushed == 2
        c.push(PlanePoint(4.0, 0.0, 3.0))
        assert c.pushed == 3

    def test_length_mismatch_rejected(self):
        c = BQSCompressor(10.0)
        with pytest.raises(ValueError, match="length mismatch"):
            c.push_xyt([0.0, 1.0], [0.0], [0.0, 1.0])
        assert c.pushed == 0

    def test_push_xyt_after_finish_rejected(self):
        c = FastBQSCompressor(10.0)
        c.push(PlanePoint(0.0, 0.0, 0.0))
        c.finish()
        with pytest.raises(RuntimeError):
            c.push_xyt([1.0], [1.0], [1.0])

    def test_mid_batch_error_leaves_consistent_state(self):
        """After a mid-batch failure the compressor must still equal a
        push() stream of the same valid prefix + suffix."""
        track = synthetic_track(600, seed=2)
        cols = TrajectoryColumns.from_points(track)
        broken = BQSCompressor(10.0)
        broken.push_xyt(cols.ts[:300], cols.xs[:300], cols.ys[:300])
        with pytest.raises(ValueError):
            # Fix 0 of this chunk is fine, fix 1 travels back in time.
            broken.push_xyt(
                [track[300].t, 0.0],
                [track[300].x, 0.0],
                [track[300].y, 0.0],
            )
        broken.push_xyt(cols.ts[301:], cols.xs[301:], cols.ys[301:])
        reference = BQSCompressor(10.0)
        for p in track:
            reference.push(p)
        assert broken.finish().key_points == reference.finish().key_points
        assert broken.stats == reference.stats

    @pytest.mark.parametrize("make", _factories(10.0), ids=lambda f: f().name)
    def test_nan_timestamp_rejected_on_every_path(self, make):
        """A NaN timestamp can never satisfy the non-decreasing contract;
        it must not poison ``last_t`` and let later out-of-order fixes
        through (``t < last_t`` is False for NaN — the checks are written
        ``not (t >= last_t)`` for exactly this reason)."""
        nan = float("nan")
        c = make()
        c.push(PlanePoint(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            c.push_xyt([nan], [1.0], [1.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            c.push(PlanePoint(2.0, 0.0, nan))
        with pytest.raises(ValueError, match="non-decreasing"):
            c.push_many([PlanePoint(2.0, 0.0, nan)])
        # The stream is still usable and ordered.
        c.push(PlanePoint(2.0, 0.0, 1.0))
        assert c.pushed == 2

    def test_columns_trusted_like_push_many(self):
        """Columnar values skip the PlanePoint finiteness validation unless
        materialized — the documented trust contract."""
        c = UniformSampler(10, epsilon=math.inf)
        # A NaN y mid-stream never becomes a key point at period 10.
        ts = [float(i) for i in range(5)]
        xs = [float(i) for i in range(5)]
        ys = [0.0, 0.0, math.nan, 0.0, 0.0]
        assert c.push_xyt(ts, xs, ys) == 5
        assert len(c.finish()) == 2
