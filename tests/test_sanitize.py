"""Feed sanitizer tests: stage pipeline, ledger reconciliation, injector.

The sanitizer's contract is twofold: every fix handed to it is accounted
for (``fixes_in == fixes_out + dropped + buffered`` at any instant), and
the chunks it releases are always compressor-safe — non-decreasing
timestamps, finite coordinates, duplicates and teleports removed per
policy.  The disorder injector is tested against its own summary so the
bench/CI ground-truth comparisons rest on an exact artifact count.
"""

import math

import pytest

from repro.engine import fleet_fixes, inject_disorder
from repro.engine.sanitize import (
    DROP_DUPLICATE,
    DROP_NON_FINITE,
    DROP_OUT_OF_ORDER,
    DROP_OUT_OF_RANGE,
    DROP_TELEPORT,
    SPLIT_GAP,
    SPLIT_TELEPORT,
    FeedReport,
    FeedSanitizer,
    SanitizePolicy,
    filter_geo_columns,
    first_invalid_geo,
    format_feed_report,
)


def _run(sanitizer, ts, xs, ys):
    """All chunks from one batch plus the flush."""
    return sanitizer.process(ts, xs, ys) + sanitizer.flush()


def _fixes(chunks):
    """Flatten chunks to a (t, x, y) list, ignoring seal markers."""
    out = []
    for _, ts, xs, ys in chunks:
        out.extend(zip(ts, xs, ys))
    return out


class TestPolicy:
    def test_defaults_are_valid_and_picklable_shape(self):
        policy = SanitizePolicy()
        assert policy.max_lateness == 0.0
        assert policy.drop_duplicates is True
        assert policy.max_speed_mps is None
        doc = policy.to_json()
        assert doc["reorder_capacity"] == 512
        assert doc["split_zones"] is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_lateness": -1.0},
            {"max_lateness": math.nan},
            {"reorder_capacity": 0},
            {"dup_dt": -0.5},
            {"dup_epsilon_m": math.inf},
            {"max_speed_mps": 0.0},
            {"max_speed_mps": -3.0},
            {"teleport_rejoin": 0},
            {"gap_seconds": 0.0},
            {"zone_margin_deg": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SanitizePolicy(**kwargs)


class TestStages:
    def test_clean_stream_passes_through_untouched(self):
        sanitizer = FeedSanitizer(SanitizePolicy())
        ts = [0.0, 1.0, 2.0, 3.0]
        chunks = _run(sanitizer, ts, [0.0, 1.0, 2.0, 3.0], [0.0] * 4)
        assert _fixes(chunks) == [(t, t, 0.0) for t in ts]
        assert not chunks[0][0]  # no seal requested
        report = sanitizer.counters.snapshot()
        assert report.fixes_in == report.fixes_out == 4
        assert report.dropped == {} and report.splits == {}

    def test_out_of_order_dropped_without_buffer(self):
        sanitizer = FeedSanitizer(SanitizePolicy())
        chunks = _run(
            sanitizer, [0.0, 2.0, 1.0, 3.0], [0.0, 2.0, 1.0, 3.0], [0.0] * 4
        )
        assert [t for t, _, _ in _fixes(chunks)] == [0.0, 2.0, 3.0]
        assert sanitizer.counters.dropped == {DROP_OUT_OF_ORDER: 1}

    def test_reorder_buffer_repairs_bounded_lateness(self):
        sanitizer = FeedSanitizer(SanitizePolicy(max_lateness=2.0))
        # 1.0 arrives after 2.0: within the lateness bound -> repaired.
        chunks = _run(
            sanitizer, [0.0, 2.0, 1.0, 5.0], [0.0, 2.0, 1.0, 5.0], [0.0] * 4
        )
        assert [t for t, _, _ in _fixes(chunks)] == [0.0, 1.0, 2.0, 5.0]
        report = sanitizer.counters.snapshot()
        assert report.reordered == 1
        assert report.dropped == {}
        assert report.buffered == 0  # flush drained everything

    def test_reorder_buffer_holds_recent_fixes_until_flush(self):
        sanitizer = FeedSanitizer(SanitizePolicy(max_lateness=10.0))
        released = sanitizer.process([0.0, 1.0, 2.0], [0.0] * 3, [0.0] * 3)
        assert released == []  # nothing older than watermark - 10 s yet
        assert sanitizer.pending == 3
        assert sanitizer.counters.buffered == 3
        drained = sanitizer.flush()
        assert [t for t, _, _ in _fixes(drained)] == [0.0, 1.0, 2.0]
        assert sanitizer.pending == 0

    def test_reorder_capacity_force_releases_oldest(self):
        sanitizer = FeedSanitizer(
            SanitizePolicy(max_lateness=1e9, reorder_capacity=2)
        )
        sanitizer.process([0.0, 1.0, 2.0, 3.0], [0.0] * 4, [0.0] * 4)
        assert sanitizer.pending == 2  # overflow released the two oldest
        report = sanitizer.counters.snapshot()
        assert report.fixes_out == 2
        assert report.buffered == 2
        assert report.reconciles

    def test_lateness_beyond_buffer_still_dropped(self):
        sanitizer = FeedSanitizer(SanitizePolicy(max_lateness=1.0))
        # By the time t=0.5 arrives, t=5.0 has already been RELEASED to
        # the compressor (watermark 6.0 put it past the lateness window):
        # unrecoverable, dropped with a reason.
        chunks = _run(
            sanitizer, [0.0, 5.0, 6.0, 0.5], [0.0, 5.0, 6.0, 0.5], [0.0] * 4
        )
        assert [t for t, _, _ in _fixes(chunks)] == [0.0, 5.0, 6.0]
        assert sanitizer.counters.dropped == {DROP_OUT_OF_ORDER: 1}

    def test_exact_duplicate_first_arrival_wins(self):
        sanitizer = FeedSanitizer(SanitizePolicy())
        chunks = _run(
            sanitizer, [0.0, 1.0, 1.0], [0.0, 1.0, 99.0], [0.0] * 3
        )
        fixes = _fixes(chunks)
        assert fixes == [(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]  # 99.0 lost
        assert sanitizer.counters.dropped == {DROP_DUPLICATE: 1}

    def test_near_duplicate_window(self):
        policy = SanitizePolicy(dup_dt=0.5, dup_epsilon_m=1.0)
        sanitizer = FeedSanitizer(policy)
        chunks = _run(
            sanitizer,
            [0.0, 0.3, 0.4, 1.5],
            [0.0, 0.5, 5.0, 5.5],
            [0.0, 0.0, 0.0, 0.0],
        )
        # 0.3 is within 0.5 s and 1 m of 0.0 -> dropped; 0.4 moved 5 m ->
        # kept; 1.5 is outside the window -> kept.
        assert [t for t, _, _ in _fixes(chunks)] == [0.0, 0.4, 1.5]
        assert sanitizer.counters.dropped == {DROP_DUPLICATE: 1}

    def test_duplicates_can_be_disabled(self):
        sanitizer = FeedSanitizer(SanitizePolicy(drop_duplicates=False))
        chunks = _run(sanitizer, [0.0, 0.0], [0.0, 1.0], [0.0, 0.0])
        assert len(_fixes(chunks)) == 2

    def test_non_finite_dropped_before_any_stage(self):
        sanitizer = FeedSanitizer(SanitizePolicy(max_lateness=5.0))
        chunks = _run(
            sanitizer,
            [0.0, math.nan, 1.0, 2.0],
            [0.0, 0.0, math.inf, 2.0],
            [0.0, 0.0, 0.0, 2.0],
        )
        assert [t for t, _, _ in _fixes(chunks)] == [0.0, 2.0]
        assert sanitizer.counters.dropped == {DROP_NON_FINITE: 2}

    def test_gap_split_seals_and_suspends_speed_gate(self):
        policy = SanitizePolicy(gap_seconds=60.0, max_speed_mps=10.0)
        sanitizer = FeedSanitizer(policy)
        # 1 m/s track, then an hour of silence and a reappearance 50 km
        # away: the gap seals the stream and the gate must NOT eat the
        # first fix of the new sub-stream.
        chunks = _run(
            sanitizer,
            [0.0, 1.0, 3601.0, 3602.0],
            [0.0, 1.0, 50_000.0, 50_001.0],
            [0.0] * 4,
        )
        assert len(chunks) == 2
        assert chunks[0][0] is False and list(chunks[0][1]) == [0.0, 1.0]
        assert chunks[1][0] is True  # seal_before
        assert list(chunks[1][1]) == [3601.0, 3602.0]
        report = sanitizer.counters.snapshot()
        assert report.splits == {SPLIT_GAP: 1}
        assert report.dropped == {}

    def test_teleport_gate_drops_spikes(self):
        policy = SanitizePolicy(max_speed_mps=10.0)
        sanitizer = FeedSanitizer(policy)
        chunks = _run(
            sanitizer,
            [0.0, 1.0, 2.0, 3.0],
            [0.0, 1.0, 9_999.0, 3.0],  # one multipath spike
            [0.0] * 4,
        )
        assert [x for _, x, _ in _fixes(chunks)] == [0.0, 1.0, 3.0]
        assert sanitizer.counters.dropped == {DROP_TELEPORT: 1}

    def test_teleport_rejoin_concedes_relocation_with_split(self):
        policy = SanitizePolicy(max_speed_mps=10.0, teleport_rejoin=3)
        sanitizer = FeedSanitizer(policy)
        # The device genuinely relocated: every fix after t=1 is far away
        # and self-consistent.  After 2 gated fixes the 3rd is accepted
        # with a teleport split.
        chunks = _run(
            sanitizer,
            [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            [0.0, 1.0, 70_000.0, 70_001.0, 70_002.0, 70_003.0],
            [0.0] * 6,
        )
        assert len(chunks) == 2
        assert chunks[1][0] is True
        assert list(chunks[1][1]) == [4.0, 5.0]
        report = sanitizer.counters.snapshot()
        assert report.dropped == {DROP_TELEPORT: 2}
        assert report.splits == {SPLIT_TELEPORT: 1}
        assert report.reconciles

    def test_split_at_batch_tail_carries_into_next_batch(self):
        policy = SanitizePolicy(gap_seconds=10.0)
        sanitizer = FeedSanitizer(policy)
        first = sanitizer.process([0.0, 1.0], [0.0, 1.0], [0.0, 0.0])
        assert len(first) == 1 and first[0][0] is False
        # The gap is detected on the first fix of the NEXT batch; its
        # chunk must still demand the seal.
        second = sanitizer.process([100.0], [100.0], [0.0])
        assert len(second) == 1
        assert second[0][0] is True
        assert sanitizer.counters.splits == {SPLIT_GAP: 1}

    def test_ledger_reconciles_on_a_thoroughly_messy_stream(self):
        policy = SanitizePolicy(
            max_lateness=2.0,
            dup_dt=0.1,
            dup_epsilon_m=0.5,
            max_speed_mps=30.0,
            gap_seconds=120.0,
        )
        sanitizer = FeedSanitizer(policy)
        ts = [0.0, 1.0, 1.0, 0.5, math.nan, 3.0, 2.0, 500.0, 501.0, 400.0]
        xs = [0.0, 1.0, 7.0, 0.5, 0.0, 3.0, 2.0, 500.0, 9e5, 400.0]
        ys = [0.0] * len(ts)
        sanitizer.process(ts, xs, ys)
        mid = sanitizer.counters.snapshot()
        assert mid.reconciles  # holds even with fixes still buffered
        sanitizer.flush()
        report = sanitizer.counters.snapshot()
        assert report.reconciles
        assert report.buffered == 0
        assert report.fixes_in == len(ts)


class TestReport:
    def test_merged_sums_elementwise(self):
        a = FeedReport(
            fixes_in=5, fixes_out=3, dropped={"duplicate": 2}, splits={"gap": 1}
        )
        b = FeedReport(
            fixes_in=4,
            fixes_out=2,
            reordered=1,
            dropped={"duplicate": 1, "teleport": 1},
        )
        m = a.merged(b)
        assert m.fixes_in == 9 and m.fixes_out == 5 and m.reordered == 1
        assert m.dropped == {"duplicate": 3, "teleport": 1}
        assert m.splits == {"gap": 1}
        assert m.reconciles

    def test_format_flags_a_broken_ledger(self):
        good = FeedReport(fixes_in=2, fixes_out=2)
        bad = FeedReport(fixes_in=2, fixes_out=1)
        assert "LEDGER" not in format_feed_report(good)
        assert "LEDGER DOES NOT RECONCILE" in format_feed_report(bad)

    def test_to_json_sorts_reason_keys(self):
        report = FeedReport(dropped={"teleport": 1, "duplicate": 2})
        assert list(report.to_json()["dropped"]) == ["duplicate", "teleport"]


class TestGeoValidation:
    def test_first_invalid_geo_names_index_and_reason(self):
        assert first_invalid_geo([0.0, 1.0], [0.0, 1.0]) is None
        index, reason, value = first_invalid_geo([0.0, 91.0], [0.0, 0.0])
        assert (index, reason, value) == (1, DROP_OUT_OF_RANGE, 91.0)
        index, reason, _ = first_invalid_geo([0.0], [math.nan])
        assert (index, reason) == (0, DROP_NON_FINITE)
        index, reason, value = first_invalid_geo([0.0, 0.0], [0.0, -181.0])
        assert (index, reason, value) == (1, DROP_OUT_OF_RANGE, -181.0)

    def test_filter_geo_columns_passes_valid_batch_by_reference(self):
        from repro.engine.sanitize import FeedCounters

        ts, lats, lons = [0.0, 1.0], [10.0, 10.1], [20.0, 20.1]
        counters = FeedCounters()
        out = filter_geo_columns(ts, lats, lons, counters)
        assert out == (ts, lats, lons)
        assert out[0] is ts  # zero-copy on the clean path
        assert counters.fixes_in == 0  # survivors counted downstream

    def test_filter_geo_columns_drops_and_counts(self):
        from repro.engine.sanitize import FeedCounters

        counters = FeedCounters()
        ts, lats, lons = filter_geo_columns(
            [0.0, 1.0, 2.0, 3.0],
            [10.0, 95.0, 10.2, 10.3],
            [20.0, 20.1, math.inf, 20.3],
            counters,
        )
        assert list(ts) == [0.0, 3.0]
        assert list(lats) == [10.0, 10.3]
        assert counters.dropped == {DROP_OUT_OF_RANGE: 1, DROP_NON_FINITE: 1}
        assert counters.fixes_in == 2  # only the dropped fixes


class TestInjector:
    def test_summary_matches_requested_artifacts(self):
        ids, cols = fleet_fixes(6, 60, seed=11)
        out_ids, ts, xs, ys, summary = inject_disorder(
            ids, cols.ts, cols.xs, cols.ys, swaps=4, dups=3, teleports=2, gaps=1
        )
        assert (summary.swaps, summary.dups, summary.teleports, summary.gaps) == (
            4, 3, 2, 1,
        )
        assert summary.artifacts == 10
        assert len(out_ids) == len(ids) + summary.dups
        assert len(ts) == len(xs) == len(ys) == len(out_ids)

    def test_deterministic_per_seed(self):
        ids, cols = fleet_fixes(5, 50, seed=3)
        a = inject_disorder(ids, cols.ts, cols.xs, cols.ys, seed=9, swaps=3)
        b = inject_disorder(ids, cols.ts, cols.xs, cols.ys, seed=9, swaps=3)
        c = inject_disorder(ids, cols.ts, cols.xs, cols.ys, seed=10, swaps=3)
        assert a[:4] == b[:4]
        assert a[:4] != c[:4]

    def test_sanitizer_recovers_exact_ground_truth(self):
        """End-to-end: inject a known amount of disorder into a clean
        fleet, run every device through a drop-mode sanitizer, and demand
        the ledger equals the injection summary exactly."""
        ids, cols = fleet_fixes(8, 80, seed=21)
        out_ids, ts, xs, ys, summary = inject_disorder(
            ids, cols.ts, cols.xs, cols.ys,
            swaps=6, dups=5, teleports=4, gaps=2,
        )
        policy = SanitizePolicy(max_speed_mps=50.0, gap_seconds=60.0)
        per_device = {}
        for i, device_id in enumerate(out_ids):
            per_device.setdefault(device_id, ([], [], []))
            dts, dxs, dys = per_device[device_id]
            dts.append(ts[i])
            dxs.append(xs[i])
            dys.append(ys[i])
        from repro.engine.sanitize import FeedCounters

        total = FeedCounters()
        for device_id, (dts, dxs, dys) in per_device.items():
            sanitizer = FeedSanitizer(policy, total)
            sanitizer.process(dts, dxs, dys)
            sanitizer.flush()
        report = total.snapshot()
        assert report.reconciles
        assert report.dropped == {
            DROP_OUT_OF_ORDER: summary.swaps,
            DROP_DUPLICATE: summary.dups,
            DROP_TELEPORT: summary.teleports,
        }
        assert report.splits == {SPLIT_GAP: summary.gaps}

    def test_reorder_mode_repairs_swaps_bit_exactly(self):
        """With a lateness window the swapped fixes are re-sorted, so the
        sanitized output equals the clean input stream exactly."""
        ids, cols = fleet_fixes(4, 40, seed=13)
        out_ids, ts, xs, ys, summary = inject_disorder(
            ids, cols.ts, cols.xs, cols.ys, swaps=5
        )
        policy = SanitizePolicy(max_lateness=5.0)
        clean = {}
        for i, device_id in enumerate(ids):
            clean.setdefault(device_id, []).append(
                (cols.ts[i], cols.xs[i], cols.ys[i])
            )
        dirty = {}
        for i, device_id in enumerate(out_ids):
            dirty.setdefault(device_id, ([], [], []))
            dts, dxs, dys = dirty[device_id]
            dts.append(ts[i])
            dxs.append(xs[i])
            dys.append(ys[i])
        repaired_swaps = 0
        for device_id, (dts, dxs, dys) in dirty.items():
            sanitizer = FeedSanitizer(policy)
            chunks = sanitizer.process(dts, dxs, dys) + sanitizer.flush()
            assert _fixes(chunks) == clean[device_id], device_id
            report = sanitizer.counters.snapshot()
            assert report.dropped == {}
            repaired_swaps += report.reordered
        assert repaired_swaps == summary.swaps

    def test_injection_validation(self):
        ids, cols = fleet_fixes(2, 10, seed=1)
        with pytest.raises(ValueError):
            inject_disorder(
                ids, cols.ts, cols.xs, cols.ys, swaps=500
            )  # nowhere to place them
