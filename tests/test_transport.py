"""Shared-memory transport tests: frame codec, ring accounting, and the
sharded engine's shm data plane (parity, backpressure, crash recovery).
"""

import os
import signal
import time
from array import array

import pytest

from repro.engine import (
    GeoStreamEngine,
    ShardedStreamEngine,
    StreamEngine,
    TransportError,
    fleet_fixes,
    iter_fix_batches,
)
from repro.engine.simulate import gps_fleet_fixes, iter_geo_fix_batches
from repro.engine.transport import (
    FRAME_HEADER_BYTES,
    MIN_RING_BYTES,
    RingReader,
    RingWriter,
    decode_payload,
    encode_payloads,
)


def _factory(device_id):
    from repro.compression import BQSCompressor

    return BQSCompressor(5.0)


def _cols(*fixes):
    ts, xs, ys = array("d"), array("d"), array("d")
    for t, x, y in fixes:
        ts.append(t)
        xs.append(x)
        ys.append(y)
    return ts, xs, ys


def _groups_equal(a, b):
    if set(a) != set(b):
        return False
    return all(
        tuple(col.tobytes() for col in a[k])
        == tuple(col.tobytes() for col in b[k])
        for k in a
    )


class TestFrameCodec:
    def test_round_trip_all_id_types(self):
        groups = {
            "taxi-7": _cols((0.0, 1.5, -2.5), (1.0, 3.25, 4.125)),
            42: _cols((2.0, -0.0, 1e300)),
            b"\x00raw": _cols((3.0, float("inf"), -1e-300)),
        }
        payloads = encode_payloads(groups, 1 << 16)
        assert len(payloads) == 1
        decoded = decode_payload(memoryview(payloads[0]))
        assert _groups_equal(decoded, groups)

    def test_round_trip_is_bit_exact(self):
        # nan payload bits survive: compare raw bytes, not float equality.
        ts, xs, ys = _cols((0.0, float("nan"), 7.0))
        payloads = encode_payloads({"d": (ts, xs, ys)}, 1 << 16)
        decoded = decode_payload(memoryview(payloads[0]))
        assert decoded["d"][1].tobytes() == xs.tobytes()

    def test_oversized_batch_splits_and_merges_back(self):
        n = 500
        ts = array("d", (float(i) for i in range(n)))
        groups = {"dev": (ts, ts[:], ts[:])}
        # ~12 KB of columns through ~1 KB payloads -> many frames.
        payloads = encode_payloads(groups, 1024)
        assert len(payloads) > 5
        assert all(len(p) <= 1024 for p in payloads)
        merged = {}
        for payload in payloads:
            for device_id, (t2, x2, y2) in decode_payload(
                memoryview(payload)
            ).items():
                if device_id in merged:
                    merged[device_id][0].extend(t2)
                    merged[device_id][1].extend(x2)
                    merged[device_id][2].extend(y2)
                else:
                    merged[device_id] = (t2, x2, y2)
        assert _groups_equal(merged, groups)

    def test_many_groups_split_at_group_boundaries(self):
        groups = {
            f"dev-{i:03d}": _cols(*((float(j), 1.0, 2.0) for j in range(20)))
            for i in range(50)
        }
        payloads = encode_payloads(groups, 2048)
        assert len(payloads) > 1
        merged = {}
        for payload in payloads:
            decoded = decode_payload(memoryview(payload))
            assert not set(decoded) & set(merged)  # no device straddles
            merged.update(decoded)
        assert _groups_equal(merged, groups)

    def test_id_cache_is_filled_and_reused(self):
        cache = {}
        groups = {"a": _cols((0.0, 1.0, 2.0))}
        first = encode_payloads(groups, 1 << 16, cache)
        assert "a" in cache
        cache_view = dict(cache)
        second = encode_payloads(groups, 1 << 16, cache)
        assert first == second and cache == cache_view

    def test_unjournalable_id_raises_transport_error(self):
        with pytest.raises(TransportError, match="transport='pipe'"):
            encode_payloads({True: _cols((0.0, 1.0, 2.0))}, 1 << 16)

    def test_trailing_garbage_raises(self):
        payload = encode_payloads({"a": _cols((0.0, 1.0, 2.0))}, 1 << 16)[0]
        with pytest.raises(TransportError, match="trailing"):
            decode_payload(memoryview(payload + b"\x00"))


class TestRingWriter:
    def _frame(self, n):
        return b"x" * n

    def test_wraparound_reuses_freed_head(self):
        ring = RingWriter(MIN_RING_BYTES)  # 256 bytes
        try:
            payload = self._frame(92)  # 100-byte frames: 2 fit, 3 don't
            assert ring.try_write(1, payload) == 0
            assert ring.try_write(2, payload) == 100
            assert ring.try_write(3, payload) is None  # only 56 at the tail
            ring.release(1)
            # Head freed: the next frame wraps to offset 0.
            assert ring.try_write(3, payload) == 0
            assert ring.in_flight == 2
            ring.release(2)
            ring.release(3)
            assert ring.in_flight == 0
        finally:
            ring.close()

    def test_full_ring_blocks_until_release(self):
        ring = RingWriter(MIN_RING_BYTES)
        try:
            big = self._frame(MIN_RING_BYTES - FRAME_HEADER_BYTES)
            assert ring.try_write(1, big) == 0
            assert ring.try_write(2, self._frame(1)) is None
            ring.release(1)
            assert ring.try_write(2, self._frame(1)) == 0
        finally:
            ring.close()

    def test_out_of_order_ack_is_a_protocol_error(self):
        ring = RingWriter(MIN_RING_BYTES)
        try:
            ring.try_write(1, self._frame(8))
            ring.try_write(2, self._frame(8))
            with pytest.raises(TransportError, match="out-of-order"):
                ring.release(2)
            empty = RingWriter(MIN_RING_BYTES)
            try:
                with pytest.raises(TransportError, match="no frame in flight"):
                    empty.release(1)
            finally:
                empty.close()
        finally:
            ring.close()

    def test_reset_forgets_in_flight(self):
        ring = RingWriter(MIN_RING_BYTES)
        try:
            ring.try_write(1, self._frame(200))
            ring.reset()
            assert ring.in_flight == 0
            assert ring.try_write(2, self._frame(200)) == 0
        finally:
            ring.close()

    def test_reader_round_trip_and_header_validation(self):
        ring = RingWriter(4096)
        reader = None
        try:
            groups = {"dev": _cols((0.0, 1.0, 2.0), (1.0, 3.0, 4.0))}
            payload = encode_payloads(groups, ring.max_payload)[0]
            offset = ring.try_write(7, payload)
            reader = RingReader(ring.name)
            total = FRAME_HEADER_BYTES + len(payload)
            assert _groups_equal(reader.read(7, offset, total), groups)
            with pytest.raises(TransportError, match="header mismatch"):
                reader.read(8, offset, total)  # doorbell seq disagrees
            with pytest.raises(TransportError, match="outside"):
                reader.read(7, 1 << 20, total)
        finally:
            if reader is not None:
                reader.close()
            ring.close()

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            RingWriter(MIN_RING_BYTES - 1)


class TestShmSharding:
    @pytest.fixture()
    def stream(self):
        return fleet_fixes(8, 80, seed=9)

    def _reference(self, ids, cols, batch=64):
        engine = StreamEngine(_factory)
        for batch_cols in iter_fix_batches(ids, cols, batch):
            engine.push_columns(*batch_cols)
        return {
            device_id: [t.key_points for t in trajectories]
            for device_id, trajectories in engine.finish_all().items()
        }

    def _run_sharded(self, ids, cols, batch=64, **kwargs):
        engine = ShardedStreamEngine(_factory, **kwargs)
        try:
            for batch_cols in iter_fix_batches(ids, cols, batch):
                engine.push_columns(*batch_cols)
            results = engine.finish_all()
        finally:
            engine.close()
        return {
            device_id: [t.key_points for t in trajectories]
            for device_id, trajectories in results.items()
        }, engine

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_shm_matches_single_process(self, stream, workers):
        ids, cols = stream
        got, _ = self._run_sharded(
            ids, cols, workers=workers, transport="shm"
        )
        assert got == self._reference(ids, cols)

    def test_push_batch_tuples_on_shm(self, stream):
        ids, cols = stream
        reference = self._reference(ids, cols, batch=len(ids))
        engine = ShardedStreamEngine(_factory, workers=2, transport="shm")
        try:
            engine.push_batch(
                (ids[i], cols.ts[i], cols.xs[i], cols.ys[i])
                for i in range(len(ids))
            )
            results = engine.finish_all()
        finally:
            engine.close()
        assert {
            d: [t.key_points for t in v] for d, v in results.items()
        } == reference

    def test_tiny_ring_backpressure_still_bit_identical(self, stream):
        # A 512-byte ring forces constant wraparound and ring-full waits;
        # correctness must be unaffected and the stats must show the waits.
        ids, cols = stream
        got, engine = self._run_sharded(
            ids, cols, workers=2, transport="shm", ring_bytes=512
        )
        assert got == self._reference(ids, cols)
        stats = engine.transport_stats()
        assert sum(s["ring_waits"] for s in stats) > 0
        assert all(s["acks"] == s["frames"] for s in stats)

    def test_ack_window_exhaustion_still_bit_identical(self, stream):
        ids, cols = stream
        got, engine = self._run_sharded(
            ids, cols, workers=2, transport="shm", batch=16, ack_window=1
        )
        assert got == self._reference(ids, cols)
        stats = engine.transport_stats()
        assert sum(s["window_waits"] for s in stats) > 0
        assert all(s["max_in_flight"] <= 1 for s in stats)

    def test_geodetic_shm_matches_single_process(self):
        ids, ts, lats, lons = gps_fleet_fixes(
            8, 60, seed=4, multi_zone=True, noise_m=2.0
        )
        single = GeoStreamEngine(_factory)
        for batch in iter_geo_fix_batches(ids, ts, lats, lons, 64):
            single.push_columns(*batch)
        expected = single.finish_all()
        with ShardedStreamEngine(
            _factory, workers=2, geodetic=True, transport="shm"
        ) as sharded:
            for batch in iter_geo_fix_batches(ids, ts, lats, lons, 64):
                sharded.push_columns(*batch)
            got = sharded.finish_all()
        assert set(got) == set(expected)
        for device in expected:
            assert [t.key_points for t in got[device]] == [
                t.key_points for t in expected[device]
            ]
            assert [t.frame for t in got[device]] == [
                t.frame for t in expected[device]
            ]

    def test_kill9_mid_stream_replays_journal(self, tmp_path, stream):
        ids, cols = stream
        reference = self._reference(ids, cols)
        batches = list(iter_fix_batches(ids, cols, 64))
        engine = ShardedStreamEngine(
            _factory,
            workers=2,
            transport="shm",
            journal_dir=tmp_path / "wal",
            restart_workers=2,
        )
        try:
            half = len(batches) // 2
            for batch in batches[:half]:
                engine.push_columns(*batch)
            os.kill(engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            for batch in batches[half:]:
                engine.push_columns(*batch)
            results = engine.finish_all()
        finally:
            engine.close()
        assert engine._restarts[0] >= 1
        assert {
            d: [t.key_points for t in v] for d, v in results.items()
        } == reference

    def test_kill9_with_tiny_ring_survives_redrive_backpressure(
        self, tmp_path, stream
    ):
        # The re-drive after a restart must itself respect ring space.
        ids, cols = stream
        reference = self._reference(ids, cols)
        batches = list(iter_fix_batches(ids, cols, 64))
        engine = ShardedStreamEngine(
            _factory,
            workers=2,
            transport="shm",
            ring_bytes=512,
            journal_dir=tmp_path / "wal",
            restart_workers=2,
        )
        try:
            half = len(batches) // 2
            for batch in batches[:half]:
                engine.push_columns(*batch)
            os.kill(engine._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            for batch in batches[half:]:
                engine.push_columns(*batch)
            results = engine.finish_all()
        finally:
            engine.close()
        assert engine._restarts[0] >= 1
        assert {
            d: [t.key_points for t in v] for d, v in results.items()
        } == reference

    def test_transport_stats_shape(self, stream):
        ids, cols = stream
        _, engine = self._run_sharded(ids, cols, workers=2, transport="shm")
        stats = engine.transport_stats()
        assert [s["shard"] for s in stats] == [0, 1]
        total_fixes = sum(s["fixes"] for s in stats)
        assert total_fixes == len(ids)
        assert abs(sum(s["utilization"] for s in stats) - 1.0) < 0.01
        for s in stats:
            assert s["transport"] == "shm"
            assert s["frames"] > 0 and s["bytes"] > 0
            assert s["acks"] == s["frames"]
            assert s["ack_us_p99"] >= s["ack_us_p50"] >= 0.0

    def test_pipe_records_stats_too(self, stream):
        ids, cols = stream
        _, engine = self._run_sharded(ids, cols, workers=2)
        stats = engine.transport_stats()
        assert sum(s["fixes"] for s in stats) == len(ids)
        assert all(s["transport"] == "pipe" and s["bytes"] == 0 for s in stats)

    def test_exotic_device_id_fails_loudly_on_shm(self):
        engine = ShardedStreamEngine(_factory, workers=1, transport="shm")
        try:
            with pytest.raises(TransportError, match="transport='pipe'"):
                engine.push_batch([(True, 0.0, 1.0, 2.0)])
            # The rejected push shipped nothing, so it must account
            # nothing: a later stats read reflects shipped fixes only.
            engine.push_batch([("a", 0.0, 1.0, 2.0)])
            engine.finish_all()
            (stats,) = engine.transport_stats()
            assert stats["fixes"] == 1
            assert stats["frames"] == 1
        finally:
            engine.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="transport"):
            ShardedStreamEngine(_factory, workers=2, transport="bogus")
        with pytest.raises(ValueError, match="ring_bytes"):
            ShardedStreamEngine(
                _factory, workers=2, transport="shm", ring_bytes=16
            )
        with pytest.raises(ValueError, match="ack_window"):
            ShardedStreamEngine(
                _factory, workers=2, transport="shm", ack_window=0
            )

    def test_rings_cleaned_up_on_close(self, stream):
        ids, cols = stream
        engine = ShardedStreamEngine(_factory, workers=2, transport="shm")
        names = [ring.name for ring in engine._rings]
        engine.close()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")


class TestTransportCLI:
    def test_engine_cli_shm(self, capsys):
        from repro.engine.__main__ import main

        assert (
            main(
                [
                    "--devices",
                    "6",
                    "--fixes",
                    "40",
                    "--workers",
                    "2",
                    "--transport",
                    "shm",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trajectories" in out

    def test_shm_requires_workers(self):
        from repro.engine.__main__ import main

        with pytest.raises(SystemExit):
            main(["--devices", "2", "--fixes", "10", "--transport", "shm"])
